//! The campaign harness: run any approach over a dataset on the
//! simulated marketplace and score the outcome.
//!
//! A *campaign* publishes a dataset's microtasks, lets the dataset's
//! worker population churn through them under one of the paper's
//! approaches, aggregates answers, and measures per-domain accuracy
//! against ground truth. All approaches share the same qualification /
//! gold task set (as in Section 6.4) and are measured on the remaining
//! tasks only, since the gold answers were requester-labelled.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::time::Instant;

use icrowd::{AssignStrategy, ICrowd, ICrowdBuilder};
use icrowd_assign::{select_qualification_influence, select_qualification_random};
use icrowd_baselines::aggregate::{Aggregator, MajorityAggregator, TaskVotes};
use icrowd_baselines::avgacc::{GoldAccuracyTracker, PvAggregator};
use icrowd_baselines::dawid_skene::DawidSkene;
use icrowd_core::answer::{Answer, Vote};
use icrowd_core::config::ICrowdConfig;
use icrowd_core::task::{TaskId, TaskSet};
use icrowd_core::worker::{Tick, WorkerId};
use icrowd_estimate::EstimationMode;
use icrowd_graph::{GraphBuilder, LinearityIndex, SimilarityGraph};
use icrowd_platform::market::{
    ExternalQuestionServer, MarketAccounting, MarketConfig, Marketplace, SubmitOutcome,
    WorkerBehavior, WorkerScript,
};
use icrowd_platform::{FaultConfig, FaultStats, RejectReason};
use icrowd_text::{
    CosineTfIdf, EditDistanceSimilarity, JaccardSimilarity, LdaConfig, TaskSimilarity, Tokenizer,
    TopicCosine,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::datasets::Dataset;
use crate::metrics::{evaluate, DomainAccuracy};

/// Which approach runs the campaign (Sections 6.1 and 6.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// iCrowd with the given strategy (Adapt / BestEffort / QF-Only).
    ICrowd(AssignStrategy),
    /// Random assignment + majority voting.
    RandomMV,
    /// Random assignment + Dawid–Skene EM aggregation.
    RandomEM,
    /// Gold-injected average accuracy + probabilistic verification.
    AvgAccPV,
}

impl Approach {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Approach::ICrowd(AssignStrategy::Adapt) => "iCrowd".into(),
            Approach::ICrowd(s) => s.name().into(),
            Approach::RandomMV => "RandomMV".into(),
            Approach::RandomEM => "RandomEM".into(),
            Approach::AvgAccPV => "AvgAccPV".into(),
        }
    }
}

/// Qualification-selection strategy (Section 6.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QualStrategy {
    /// Influence-maximizing selection (Algorithm 4) — `InfQF`.
    #[default]
    Influence,
    /// Uniform random selection — `RandomQF`.
    Random,
}

impl QualStrategy {
    /// Display name matching Figure 7.
    pub fn name(self) -> &'static str {
        match self {
            QualStrategy::Influence => "InfQF",
            QualStrategy::Random => "RamdomQF", // sic — the paper's spelling
        }
    }
}

/// Similarity metric choice (Appendix D.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricChoice {
    /// Token-set Jaccard.
    Jaccard,
    /// Cosine over tf-idf vectors.
    CosTfIdf,
    /// Cosine over LDA topic distributions with `num_topics` topics.
    CosTopic {
        /// LDA topic count.
        num_topics: usize,
    },
    /// Normalized character edit distance.
    EditDistance,
}

impl MetricChoice {
    /// Display name matching Figure 12.
    pub fn name(&self) -> &'static str {
        match self {
            MetricChoice::Jaccard => "Jaccard",
            MetricChoice::CosTfIdf => "Cos(tf-idf)",
            MetricChoice::CosTopic { .. } => "Cos(topic)",
            MetricChoice::EditDistance => "EditDistance",
        }
    }

    /// Instantiates the metric over a task set.
    pub fn build(&self, tasks: &TaskSet, seed: u64) -> Box<dyn TaskSimilarity + Send + Sync> {
        let tokenizer = Tokenizer::new();
        match *self {
            MetricChoice::Jaccard => Box::new(JaccardSimilarity::new(tasks, &tokenizer)),
            MetricChoice::CosTfIdf => Box::new(CosineTfIdf::new(tasks, &tokenizer)),
            MetricChoice::CosTopic { num_topics } => Box::new(TopicCosine::new(
                tasks,
                &tokenizer,
                &LdaConfig {
                    num_topics,
                    iterations: 150,
                    seed,
                    ..Default::default()
                },
            )),
            MetricChoice::EditDistance => Box::new(EditDistanceSimilarity::new(tasks)),
        }
    }
}

/// How much work each simulated worker is willing to do, and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerDynamics {
    /// Every worker arrives immediately and answers until the campaign
    /// completes (or the given cap). With the whole population always
    /// active there is no contention for expertise, so myopic strategies
    /// look artificially good; kept for ablations.
    Uniform {
        /// Per-worker answer cap.
        max_answers: usize,
    },
    /// Heavy-tailed patience and pace: budgets are `5 + Exp(4 x fair
    /// share)` and per-answer pace `1 + Exp(8)` ticks, matching the
    /// empirical AMT volume skew behind Figure 15. Both draws are
    /// independent of skill.
    HeavyTail,
    /// The paper's premise (Section 2.1): the worker set is *dynamic* —
    /// workers arrive staggered over the campaign, work one session with
    /// an `Exp`-distributed budget, and leave. Only about `concurrency`
    /// workers are active at any time, so assignment must spend the
    /// expertise that is present *now* — the regime where adaptive
    /// assignment earns its keep. This is the default.
    Sessions {
        /// Target number of concurrently active workers.
        concurrency: usize,
    },
}

/// Campaign parameters. Defaults mirror the paper: `k = 3`, `alpha = 1`,
/// `Cos(topic)` similarity at threshold 0.8, `Q = 10` qualification
/// tasks selected by influence maximization, heavy-tailed worker
/// patience.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base RNG seed; every stochastic component derives from it.
    pub seed: u64,
    /// Framework configuration (k, alpha, thresholds, ...).
    pub icrowd: ICrowdConfig,
    /// Similarity metric for the graph.
    pub metric: MetricChoice,
    /// Qualification-selection strategy.
    pub qual: QualStrategy,
    /// Estimation mode (centered by default; raw for the literal paper).
    pub estimation_mode: EstimationMode,
    /// Worker patience model.
    pub dynamics: WorkerDynamics,
    /// Aggregate iCrowd results by estimate-weighted majority voting
    /// instead of plain consensus (Section 2.1's "(weighted) majority
    /// voting"; compared in the `ablation` bench).
    pub weighted_aggregation: bool,
    /// Fault-injection plan for the marketplace loop (dropped, duplicated,
    /// late answers; stalls; churn spikes). `None` runs the fault-free
    /// loop, bit-identical to the pre-fault harness.
    pub faults: Option<FaultConfig>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            icrowd: ICrowdConfig {
                similarity_threshold: 0.8,
                ..Default::default()
            },
            metric: MetricChoice::CosTopic { num_topics: 8 },
            qual: QualStrategy::Influence,
            estimation_mode: EstimationMode::default(),
            dynamics: WorkerDynamics::Sessions { concurrency: 6 },
            weighted_aggregation: false,
            faults: None,
        }
    }
}

/// A scored campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Approach name.
    pub approach: String,
    /// Dataset name.
    pub dataset: String,
    /// Overall accuracy over measured (non-gold) tasks.
    pub overall: f64,
    /// Per-domain accuracies in domain-id order.
    pub per_domain: Vec<DomainAccuracy>,
    /// Crowd answers collected (warm-up included).
    pub answers: usize,
    /// Requester spend in cents.
    pub spend_cents: u64,
    /// Regular assignments per worker (profile names).
    pub worker_assignments: Vec<(String, u32)>,
    /// Wall-clock time of the whole campaign, milliseconds.
    pub elapsed_ms: f64,
    /// The shared qualification/gold set used.
    pub gold: Vec<TaskId>,
    /// Answer-flow accounting from the marketplace (submitted, accepted,
    /// rejected, paid, abandoned).
    pub accounting: MarketAccounting,
    /// Faults the marketplace actually injected.
    pub fault_stats: FaultStats,
    /// Whether every task reached its consensus before the crowd ran out.
    pub completed: bool,
    /// Final consensus labels in task-id order (gold tasks resolve to
    /// their requester labels). This is the artifact compared
    /// byte-for-byte between the in-process and served campaign paths.
    pub labels: Vec<(TaskId, Answer)>,
}

impl CampaignResult {
    /// Accuracy in a named domain.
    pub fn domain_accuracy(&self, domain: &str) -> Option<f64> {
        self.per_domain
            .iter()
            .find(|d| d.domain == domain)
            .map(DomainAccuracy::accuracy)
    }
}

/// Builds the similarity graph a campaign will use.
pub fn build_graph(dataset: &Dataset, config: &CampaignConfig) -> SimilarityGraph {
    let metric = config.metric.build(&dataset.tasks, config.seed);
    let mut builder = GraphBuilder::new(config.icrowd.similarity_threshold)
        .with_threads(config.icrowd.ppr.threads);
    if let Some(m) = config.icrowd.max_neighbors {
        builder = builder.with_max_neighbors(m);
    }
    builder.build(&dataset.tasks, &metric)
}

/// Selects the shared qualification/gold set for a campaign.
pub fn select_gold(
    dataset: &Dataset,
    graph: &SimilarityGraph,
    config: &CampaignConfig,
) -> Vec<TaskId> {
    match config.qual {
        QualStrategy::Influence => {
            let index = LinearityIndex::build(graph, config.icrowd.alpha, &config.icrowd.ppr);
            select_qualification_influence(&index, config.icrowd.warmup.num_qualification)
        }
        QualStrategy::Random => {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x51ED);
            select_qualification_random(
                dataset.tasks.len(),
                config.icrowd.warmup.num_qualification,
                &mut rng,
            )
        }
    }
}

/// Runs one campaign end to end.
///
/// ```
/// use icrowd::AssignStrategy;
/// use icrowd_sim::campaign::{run_campaign, Approach, CampaignConfig, MetricChoice};
/// use icrowd_sim::datasets::table1;
///
/// let dataset = table1();
/// let mut config = CampaignConfig {
///     metric: MetricChoice::Jaccard,
///     ..Default::default()
/// };
/// config.icrowd.similarity_threshold = 0.4;
/// config.icrowd.warmup.num_qualification = 3;
/// let result = run_campaign(&dataset, Approach::ICrowd(AssignStrategy::Adapt), &config);
/// assert!(result.overall > 0.0);
/// assert_eq!(result.per_domain.len(), 3);
/// ```
pub fn run_campaign(
    dataset: &Dataset,
    approach: Approach,
    config: &CampaignConfig,
) -> CampaignResult {
    let graph = build_graph(dataset, config);
    let gold = select_gold(dataset, &graph, config);
    run_campaign_with(dataset, approach, config, graph, gold)
}

/// Runs a campaign with a pre-built graph and gold set (lets experiment
/// sweeps share the expensive offline work across approaches).
pub fn run_campaign_with(
    dataset: &Dataset,
    approach: Approach,
    config: &CampaignConfig,
    graph: SimilarityGraph,
    gold: Vec<TaskId>,
) -> CampaignResult {
    let start = Instant::now();
    let setup = prepare_campaign_with(dataset, approach, config, graph, gold);
    let CampaignSetup {
        mut server,
        scripts,
        market: market_config,
        gold,
    } = setup;
    let behaviors: Vec<(WorkerScript, Box<dyn WorkerBehavior>)> = dataset
        .spawn_workers(config.seed)
        .into_iter()
        .zip(scripts)
        .map(|(w, script)| (script, Box::new(w) as Box<dyn WorkerBehavior>))
        .collect();
    let market = Marketplace::new(dataset.tasks.clone(), market_config);

    let outcome = market.run_with_faults(&mut server, behaviors, config.faults.clone());
    score_campaign(
        dataset,
        approach,
        config,
        &mut server,
        gold,
        &outcome,
        start.elapsed().as_secs_f64() * 1e3,
    )
}

/// The marketplace-side ingredients of a campaign: the answer server,
/// the worker scripts, the market configuration and the shared gold
/// set. Both the in-process harness ([`run_campaign_with`]) and the TCP
/// serving layer build exactly this, so a served campaign runs the same
/// deterministic schedule as an in-process one at the same seed.
pub struct CampaignSetup {
    /// The ExternalQuestion server for the chosen approach.
    pub server: CampaignServer,
    /// Per-worker marketplace scripts in roster order.
    pub scripts: Vec<WorkerScript>,
    /// Marketplace parameters (HIT count scaled to expected demand).
    pub market: MarketConfig,
    /// The shared qualification/gold set.
    pub gold: Vec<TaskId>,
}

/// Builds a [`CampaignSetup`], running the offline work (graph + gold
/// selection) first.
pub fn prepare_campaign(
    dataset: &Dataset,
    approach: Approach,
    config: &CampaignConfig,
) -> CampaignSetup {
    let graph = build_graph(dataset, config);
    let gold = select_gold(dataset, &graph, config);
    prepare_campaign_with(dataset, approach, config, graph, gold)
}

/// Builds a [`CampaignSetup`] from a pre-built graph and gold set.
pub fn prepare_campaign_with(
    dataset: &Dataset,
    approach: Approach,
    config: &CampaignConfig,
    graph: SimilarityGraph,
    gold: Vec<TaskId>,
) -> CampaignSetup {
    let total_answers =
        dataset.tasks.len() * config.icrowd.assignment_size + dataset.workers.len() * gold.len();
    let scripts = worker_scripts(config, dataset.workers.len(), total_answers);
    let market = MarketConfig {
        num_hits: total_answers / 100 + dataset.workers.len() + 1,
        ..Default::default()
    };
    let server = CampaignServer::new(dataset, approach, config, graph, gold.clone());
    CampaignSetup {
        server,
        scripts,
        market,
        gold,
    }
}

/// Scores a finished marketplace run into a [`CampaignResult`] (shared
/// by the in-process harness and the serving layer's drain path).
pub fn score_campaign(
    dataset: &Dataset,
    approach: Approach,
    config: &CampaignConfig,
    server: &mut CampaignServer,
    gold: Vec<TaskId>,
    outcome: &icrowd_platform::market::MarketOutcome,
    elapsed_ms: f64,
) -> CampaignResult {
    let completed = server.is_complete();
    let results = server.results(config.weighted_aggregation);
    let excluded: HashSet<TaskId> = gold.iter().copied().collect();
    let (overall, per_domain) = evaluate(dataset, &results, &excluded);
    let mut labels: Vec<(TaskId, Answer)> = results.iter().map(|(&t, &a)| (t, a)).collect();
    labels.sort_unstable_by_key(|(t, _)| *t);

    // Map platform external ids ("W<i>") back to profile names; ids
    // outside that format (e.g. from a misbehaving network client) are
    // reported verbatim instead of panicking.
    let worker_assignments = server
        .worker_assignments()
        .into_iter()
        .map(|(external, count)| {
            let name = external
                .strip_prefix('W')
                .and_then(|s| s.parse::<usize>().ok())
                .and_then(|i| i.checked_sub(1))
                .and_then(|i| dataset.workers.get(i))
                .map_or(external.clone(), |w| w.name.clone());
            (name, count)
        })
        .collect();

    CampaignResult {
        approach: approach.name(),
        dataset: dataset.name.clone(),
        overall,
        per_domain,
        answers: outcome.answers,
        spend_cents: outcome.ledger.total_spend(),
        worker_assignments,
        elapsed_ms,
        gold,
        accounting: outcome.accounting,
        fault_stats: outcome.faults,
        completed,
        labels,
    }
}

/// Renders consensus labels in the canonical `<task> <answer>` line
/// format used for byte-for-byte comparison between the in-process and
/// served campaign paths (and by `--labels-out`).
pub fn labels_lines(labels: &[(TaskId, Answer)]) -> String {
    let mut out = String::with_capacity(labels.len() * 8);
    for (t, a) in labels {
        writeln!(out, "{} {}", t.0, a.0).expect("write to String");
    }
    out
}

/// Draws per-worker marketplace scripts for the configured dynamics.
///
/// Heavy-tail mode skews both *rate* and *budget*: a worker's pace is
/// `1 + Exp(8)` ticks per answer (a few prolific workers answer an order
/// of magnitude faster than the long tail — the empirical AMT regime
/// behind Figure 15) and her budget is `5 + Exp(4 x fair share)`. Both
/// draws are independent of skill, so no assignment strategy is
/// favoured.
fn worker_scripts(
    config: &CampaignConfig,
    num_workers: usize,
    total_answers: usize,
) -> Vec<WorkerScript> {
    match config.dynamics {
        WorkerDynamics::Uniform { max_answers } => (0..num_workers)
            .map(|i| WorkerScript {
                arrival: Tick(i as u64),
                max_answers,
                ticks_per_answer: 1,
            })
            .collect(),
        WorkerDynamics::HeavyTail => {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9A71_ECE5);
            let mean_budget = 4.0 * total_answers as f64 / num_workers.max(1) as f64;
            let mut exp = |mean: f64| {
                let u: f64 = rand::Rng::gen_range(&mut rng, 1e-9..1.0f64);
                -mean * u.ln()
            };
            (0..num_workers)
                .map(|i| WorkerScript {
                    arrival: Tick(i as u64),
                    max_answers: 5 + exp(mean_budget) as usize,
                    ticks_per_answer: 1 + (exp(8.0) as u64).min(40),
                })
                .collect()
        }
        WorkerDynamics::Sessions { concurrency } => {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5E55_10A5);
            // Budgets sum to ~2x demand; arrivals staggered so ~
            // `concurrency` sessions overlap (each session lasts about
            // its budget in ticks at one answer per tick).
            let fair = total_answers as f64 / num_workers.max(1) as f64;
            let mean_budget = 2.0 * fair;
            let spacing = (mean_budget / concurrency.max(1) as f64).max(1.0);
            let mut exp = |mean: f64| {
                let u: f64 = rand::Rng::gen_range(&mut rng, 1e-9..1.0f64);
                -mean * u.ln()
            };
            (0..num_workers)
                .map(|i| {
                    let jitter = exp(spacing / 2.0);
                    WorkerScript {
                        arrival: Tick((i as f64 * spacing + jitter) as u64),
                        max_answers: 5 + exp(mean_budget) as usize,
                        ticks_per_answer: 1,
                    }
                })
                .collect()
        }
    }
}

/// Dispatch wrapper over the two server families (iCrowd's adaptive
/// assigner and the random-assignment baselines) — the
/// [`ExternalQuestionServer`] a campaign runs against, whichever host
/// (in-process marketplace or TCP serving layer) drives it.
pub enum CampaignServer {
    /// iCrowd with one of its assignment strategies.
    ICrowd(Box<ICrowd>),
    /// A random-assignment baseline (RandomMV / RandomEM / AvgAccPV).
    Random(Box<RandomServer>),
}

impl CampaignServer {
    /// Builds the server for `approach` over the dataset's tasks, with
    /// the shared graph and gold set.
    pub fn new(
        dataset: &Dataset,
        approach: Approach,
        config: &CampaignConfig,
        graph: SimilarityGraph,
        gold: Vec<TaskId>,
    ) -> Self {
        match approach {
            Approach::ICrowd(strategy) => CampaignServer::ICrowd(Box::new(
                ICrowdBuilder::new(dataset.tasks.clone())
                    .config(config.icrowd.clone())
                    .strategy(strategy)
                    .estimation_mode(config.estimation_mode)
                    .graph(graph)
                    .qualification(gold.clone())
                    .build(),
            )),
            Approach::RandomMV => CampaignServer::Random(Box::new(RandomServer::new(
                dataset.tasks.clone(),
                config,
                gold,
                BaselineMode::MajorityVote,
            ))),
            Approach::RandomEM => CampaignServer::Random(Box::new(RandomServer::new(
                dataset.tasks.clone(),
                config,
                gold,
                BaselineMode::DawidSkene,
            ))),
            Approach::AvgAccPV => CampaignServer::Random(Box::new(RandomServer::new(
                dataset.tasks.clone(),
                config,
                gold,
                BaselineMode::ProbabilisticVerification,
            ))),
        }
    }

    /// Aggregated answers per task (gold tasks resolve to their
    /// requester labels).
    pub fn results(&mut self, weighted: bool) -> HashMap<TaskId, Answer> {
        match self {
            CampaignServer::ICrowd(s) if weighted => s.results_weighted(),
            CampaignServer::ICrowd(s) => s.results(),
            CampaignServer::Random(s) => s.results(),
        }
    }

    /// Regular assignments per worker, by external id.
    pub fn worker_assignments(&self) -> Vec<(String, u32)> {
        match self {
            CampaignServer::ICrowd(s) => s.worker_assignments(),
            CampaignServer::Random(s) => s.worker_assignments(),
        }
    }
}

impl ExternalQuestionServer for CampaignServer {
    fn request_task(&mut self, worker: &str, now: Tick) -> Option<TaskId> {
        match self {
            CampaignServer::ICrowd(s) => s.request_task(worker, now),
            CampaignServer::Random(s) => s.request_task(worker, now),
        }
    }

    fn submit_answer(
        &mut self,
        worker: &str,
        task: TaskId,
        answer: Answer,
        now: Tick,
    ) -> SubmitOutcome {
        match self {
            CampaignServer::ICrowd(s) => s.submit_answer(worker, task, answer, now),
            CampaignServer::Random(s) => s.submit_answer(worker, task, answer, now),
        }
    }

    fn is_complete(&self) -> bool {
        match self {
            CampaignServer::ICrowd(s) => s.is_complete(),
            CampaignServer::Random(s) => s.is_complete(),
        }
    }
}

/// How a random-assignment baseline aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BaselineMode {
    MajorityVote,
    DawidSkene,
    ProbabilisticVerification,
}

/// The random-assignment server shared by RandomMV, RandomEM and
/// AvgAccPV.
///
/// All three treat the shared gold set as requester-known (excluded from
/// crowd work and from measurement). AvgAccPV additionally warms every
/// worker up on the gold set to estimate her average accuracy and
/// eliminates workers below the threshold, per CDAS.
pub struct RandomServer {
    tasks: TaskSet,
    k: usize,
    num_choices: u8,
    mode: BaselineMode,
    gold: Vec<TaskId>,
    gold_set: HashSet<TaskId>,
    /// Votes per task (regular assignments only).
    votes: Vec<Vec<Vote>>,
    /// Worker registry: external id → dense index.
    ids: HashMap<String, usize>,
    names: Vec<String>,
    answered: Vec<HashSet<TaskId>>,
    gold_progress: Vec<usize>,
    assignments: Vec<u32>,
    in_flight: Vec<Option<TaskId>>,
    tracker: GoldAccuracyTracker,
    reject_threshold: f64,
    reject_after: usize,
    uses_gold: bool,
    remaining: usize,
    rng: StdRng,
}

impl RandomServer {
    fn new(tasks: TaskSet, config: &CampaignConfig, gold: Vec<TaskId>, mode: BaselineMode) -> Self {
        let n = tasks.len();
        let gold_set: HashSet<TaskId> = gold.iter().copied().collect();
        let remaining = n - gold_set.len();
        let num_choices = tasks.iter().map(|t| t.num_choices).max().unwrap_or(2);
        Self {
            tasks,
            k: config.icrowd.assignment_size,
            num_choices,
            mode,
            gold,
            gold_set,
            votes: vec![Vec::new(); n],
            ids: HashMap::new(),
            names: Vec::new(),
            answered: Vec::new(),
            gold_progress: Vec::new(),
            assignments: Vec::new(),
            in_flight: Vec::new(),
            tracker: GoldAccuracyTracker::new(),
            reject_threshold: config.icrowd.warmup.reject_threshold,
            reject_after: config.icrowd.warmup.reject_after,
            uses_gold: mode == BaselineMode::ProbabilisticVerification,
            remaining,
            rng: StdRng::seed_from_u64(config.seed ^ 0xBA5E),
        }
    }

    fn worker_index(&mut self, external: &str) -> usize {
        if let Some(&i) = self.ids.get(external) {
            return i;
        }
        let i = self.names.len();
        self.ids.insert(external.to_owned(), i);
        self.names.push(external.to_owned());
        self.answered.push(HashSet::new());
        self.gold_progress.push(0);
        self.assignments.push(0);
        self.in_flight.push(None);
        i
    }

    fn results(&self) -> HashMap<TaskId, Answer> {
        let n = self.tasks.len();
        let task_votes: Vec<TaskVotes> = self
            .votes
            .iter()
            .enumerate()
            .map(|(i, votes)| TaskVotes {
                task: TaskId(i as u32),
                votes: votes.clone(),
            })
            .collect();
        let aggregated: Vec<Option<Answer>> = match self.mode {
            BaselineMode::MajorityVote => {
                MajorityAggregator.aggregate(n, self.num_choices, &task_votes)
            }
            BaselineMode::DawidSkene => {
                DawidSkene::default().aggregate(n, self.num_choices, &task_votes)
            }
            BaselineMode::ProbabilisticVerification => {
                PvAggregator::new(self.tracker.clone()).aggregate(n, self.num_choices, &task_votes)
            }
        };
        let mut out: HashMap<TaskId, Answer> = aggregated
            .into_iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|a| (TaskId(i as u32), a)))
            .collect();
        // Gold tasks resolve to their requester labels.
        for &g in &self.gold {
            if let Some(truth) = self.tasks[g].ground_truth {
                out.insert(g, truth);
            }
        }
        out
    }

    fn worker_assignments(&self) -> Vec<(String, u32)> {
        self.names
            .iter()
            .cloned()
            .zip(self.assignments.iter().copied())
            .collect()
    }
}

impl ExternalQuestionServer for RandomServer {
    fn request_task(&mut self, external: &str, _now: Tick) -> Option<TaskId> {
        let w = self.worker_index(external);
        if let Some(t) = self.in_flight[w] {
            return Some(t);
        }
        // AvgAccPV: gold phase first, then elimination.
        if self.uses_gold {
            if self.gold_progress[w] < self.gold.len() {
                let task = self.gold[self.gold_progress[w]];
                self.in_flight[w] = Some(task);
                return Some(task);
            }
            if self.tracker.is_eliminated(
                WorkerId(w as u32),
                self.reject_threshold,
                self.reject_after as u32,
            ) {
                return None;
            }
        }
        // Random eligible open task.
        let eligible: Vec<TaskId> = (0..self.tasks.len() as u32)
            .map(TaskId)
            .filter(|t| {
                !self.gold_set.contains(t)
                    && self.votes[t.index()].len() + usize::from(self.in_flight.contains(&Some(*t)))
                        < self.k
                    && !self.answered[w].contains(t)
                    && !self.votes[t.index()].iter().any(|v| v.worker.index() == w)
            })
            .collect();
        let pick = icrowd_baselines::pickers::random_pick(&eligible, &mut self.rng)?;
        self.in_flight[w] = Some(pick);
        self.assignments[w] += 1;
        Some(pick)
    }

    fn submit_answer(
        &mut self,
        external: &str,
        task: TaskId,
        answer: Answer,
        _now: Tick,
    ) -> SubmitOutcome {
        let w = self.worker_index(external);
        // Only answers matching the worker's outstanding assignment count;
        // anything else is a duplicate or was never assigned.
        if self.in_flight[w] != Some(task) {
            let reason = if self.answered[w].contains(&task) {
                RejectReason::Duplicate
            } else {
                RejectReason::NotAssigned
            };
            return SubmitOutcome::Rejected(reason);
        }
        self.in_flight[w] = None;
        self.answered[w].insert(task);
        if self.gold_set.contains(&task) {
            let truth = self.tasks[task].ground_truth.expect("gold carries truth");
            self.gold_progress[w] += 1;
            self.tracker.record(WorkerId(w as u32), answer, truth);
            return SubmitOutcome::Accepted;
        }
        let votes = &mut self.votes[task.index()];
        // Several holders can race for the last slot (the eligibility
        // filter counts at most one in-flight copy); late finishers lose.
        if votes.len() >= self.k {
            return SubmitOutcome::Rejected(RejectReason::TaskCompleted);
        }
        debug_assert!(
            !votes.iter().any(|v| v.worker.index() == w),
            "assignment validation admitted a repeated vote"
        );
        votes.push(Vote {
            worker: WorkerId(w as u32),
            answer,
        });
        if votes.len() == self.k {
            self.remaining -= 1;
        }
        SubmitOutcome::Accepted
    }

    fn is_complete(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::table1;

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            metric: MetricChoice::Jaccard,
            icrowd: ICrowdConfig {
                similarity_threshold: 0.3,
                warmup: icrowd_core::config::WarmupConfig {
                    num_qualification: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn all_approaches_complete_on_table1() {
        let ds = table1();
        let config = quick_config();
        for approach in [
            Approach::ICrowd(AssignStrategy::Adapt),
            Approach::ICrowd(AssignStrategy::BestEffort),
            Approach::ICrowd(AssignStrategy::QfOnly),
            Approach::RandomMV,
            Approach::RandomEM,
            Approach::AvgAccPV,
        ] {
            let r = run_campaign(&ds, approach, &config);
            assert!(
                (0.0..=1.0).contains(&r.overall),
                "{}: accuracy {}",
                r.approach,
                r.overall
            );
            assert!(r.answers > 0, "{} collected no answers", r.approach);
            assert_eq!(r.gold.len(), 3);
            // 12 tasks - 3 gold = 9 measured.
            let measured: usize = r.per_domain.iter().map(|d| d.total).sum();
            assert_eq!(measured, 9, "{}", r.approach);
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let ds = table1();
        let config = quick_config();
        let a = run_campaign(&ds, Approach::ICrowd(AssignStrategy::Adapt), &config);
        let b = run_campaign(&ds, Approach::ICrowd(AssignStrategy::Adapt), &config);
        assert_eq!(a.overall, b.overall);
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.worker_assignments, b.worker_assignments);
    }

    #[test]
    fn random_baseline_collects_exactly_k_votes_per_task() {
        let ds = table1();
        let config = quick_config();
        let r = run_campaign(&ds, Approach::RandomMV, &config);
        // 9 non-gold tasks x k=3 votes; RandomMV has no warm-up answers.
        assert_eq!(r.answers, 27);
    }

    #[test]
    fn avgaccpv_spends_gold_answers_too() {
        let ds = table1();
        let config = quick_config();
        let r = run_campaign(&ds, Approach::AvgAccPV, &config);
        // 27 regular + up to 5 workers x 3 gold.
        assert!(r.answers > 27, "gold answers missing: {}", r.answers);
        assert!(r.answers <= 27 + 15);
    }

    #[test]
    fn gold_set_is_shared_across_approaches() {
        let ds = table1();
        let config = quick_config();
        let a = run_campaign(&ds, Approach::RandomMV, &config);
        let b = run_campaign(&ds, Approach::ICrowd(AssignStrategy::Adapt), &config);
        assert_eq!(a.gold, b.gold);
    }
}
