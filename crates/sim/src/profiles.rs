//! Worker accuracy profiles — the Figure 6 diversity regime.
//!
//! Figure 6's headline observation: individual workers are *diverse*
//! across domains (strong where they have background knowledge, at or
//! below chance elsewhere), and the top worker differs per domain. The
//! paper's text pins several concrete values, reproduced verbatim here as
//! *anchor* workers; the remaining population is drawn from the same
//! regime with a seeded RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A worker's name and per-domain accuracy vector.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerProfile {
    /// AMT-style worker name.
    pub name: String,
    /// Accuracy per domain index.
    pub domain_accuracy: Vec<f64>,
}

impl WorkerProfile {
    /// Mean accuracy across domains (what AvgAccPV effectively sees).
    pub fn average_accuracy(&self) -> f64 {
        self.domain_accuracy.iter().sum::<f64>() / self.domain_accuracy.len() as f64
    }

    /// The domain index this worker is best at.
    pub fn best_domain(&self) -> usize {
        self.domain_accuracy
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Anchor workers for YahooQA (Figure 6a): domains are ordered
/// [FIFA, Books&Authors, Diet&Fitness, HomeSchooling, Hunting, Philosophy].
///
/// `A2YEBGPVQ41ESM`'s row reproduces the values quoted in Section 6.2:
/// BA 0.875, PH 0.70, DF 0.35, HS 0.30, HT 0.231, FF 0.176.
pub fn yahooqa_anchors() -> Vec<WorkerProfile> {
    vec![
        WorkerProfile {
            name: "A2YEBGPVQ41ESM".into(),
            domain_accuracy: vec![0.176, 0.875, 0.35, 0.30, 0.231, 0.70],
        },
        // Quoted in Section 6.3.1 as a worker with limited FIFA accuracy
        // that InfQF eliminates early.
        WorkerProfile {
            name: "A1H8Y5D04A7T5E".into(),
            domain_accuracy: vec![0.25, 0.55, 0.60, 0.45, 0.40, 0.50],
        },
    ]
}

/// Anchor workers for ItemCompare (Figure 6b): domains are ordered
/// [Food, NBA, Auto, Country].
///
/// Section 6.2: `A2V99E4YEP14RI` is the best Country worker (0.95) but
/// low-ranked in NBA (0.52); `A3JOGMTOAUEFUP` is the best NBA worker.
/// Section 6.4: the best Auto worker only reaches 0.76 while the other
/// domains' best workers exceed 0.9 — the generator preserves that cap.
pub fn item_compare_anchors() -> Vec<WorkerProfile> {
    vec![
        WorkerProfile {
            name: "A2V99E4YEP14RI".into(),
            domain_accuracy: vec![0.61, 0.52, 0.55, 0.95],
        },
        WorkerProfile {
            name: "A3JOGMTOAUEFUP".into(),
            domain_accuracy: vec![0.55, 0.92, 0.50, 0.63],
        },
        // The best Auto worker in the population (capped at 0.76).
        WorkerProfile {
            name: "A1AUTOBEST4XQZ".into(),
            domain_accuracy: vec![0.58, 0.49, 0.76, 0.60],
        },
    ]
}

/// Caps applied per domain when generating random profiles (`None` =
/// uncapped). ItemCompare's Auto domain is capped at 0.76 per the paper.
#[derive(Debug, Clone)]
pub struct DiversityRegime {
    /// Number of domains.
    pub num_domains: usize,
    /// Expert-domain accuracy range.
    pub expert_range: (f64, f64),
    /// Non-expert accuracy range.
    pub weak_range: (f64, f64),
    /// Per-domain accuracy cap.
    pub caps: Vec<Option<f64>>,
    /// Fraction of "mediocre" workers with flat, middling accuracy.
    pub mediocre_fraction: f64,
}

impl DiversityRegime {
    /// The default regime matching Figure 6's spread.
    pub fn new(num_domains: usize) -> Self {
        Self {
            num_domains,
            expert_range: (0.72, 0.95),
            weak_range: (0.20, 0.60),
            caps: vec![None; num_domains],
            mediocre_fraction: 0.2,
        }
    }

    /// Caps a domain's accuracy (e.g. Auto at 0.76).
    pub fn with_cap(mut self, domain: usize, cap: f64) -> Self {
        self.caps[domain] = Some(cap);
        self
    }
}

/// Generates `count` random profiles in the regime, named `AWKR...`
/// AMT-style, deterministically from `seed`.
pub fn generate_profiles(regime: &DiversityRegime, count: usize, seed: u64) -> Vec<WorkerProfile> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let name = format!("AWKR{:010X}", rng.gen::<u32>() as u64 | ((i as u64) << 32));
        let mediocre = rng.gen_bool(regime.mediocre_fraction);
        let mut accs = Vec::with_capacity(regime.num_domains);
        if mediocre {
            for d in 0..regime.num_domains {
                let mut a: f64 = rng.gen_range(0.45..0.65);
                if let Some(cap) = regime.caps[d] {
                    a = a.min(cap);
                }
                accs.push(a);
            }
        } else {
            // One or two expert domains, weak elsewhere.
            let first = rng.gen_range(0..regime.num_domains);
            let second = if regime.num_domains > 1 && rng.gen_bool(0.35) {
                let mut s = rng.gen_range(0..regime.num_domains);
                while s == first {
                    s = rng.gen_range(0..regime.num_domains);
                }
                Some(s)
            } else {
                None
            };
            for d in 0..regime.num_domains {
                let expert = d == first || Some(d) == second;
                let (lo, hi) = if expert {
                    regime.expert_range
                } else {
                    regime.weak_range
                };
                let mut a = rng.gen_range(lo..hi);
                if let Some(cap) = regime.caps[d] {
                    a = a.min(cap);
                }
                accs.push(a);
            }
        }
        out.push(WorkerProfile {
            name,
            domain_accuracy: accs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_quoted_paper_values() {
        let y = yahooqa_anchors();
        let a = &y[0];
        assert_eq!(a.name, "A2YEBGPVQ41ESM");
        assert_eq!(a.domain_accuracy[1], 0.875, "Books&Authors");
        assert_eq!(a.domain_accuracy[5], 0.70, "Philosophy");
        assert_eq!(a.domain_accuracy[0], 0.176, "FIFA");
        assert_eq!(a.best_domain(), 1);

        let ic = item_compare_anchors();
        assert_eq!(ic[0].domain_accuracy[3], 0.95, "Country expert");
        assert_eq!(ic[0].domain_accuracy[1], 0.52, "low-ranked in NBA");
        assert!(ic[2].domain_accuracy[2] <= 0.76, "Auto cap");
    }

    #[test]
    fn generated_profiles_are_diverse_and_deterministic() {
        let regime = DiversityRegime::new(4);
        let a = generate_profiles(&regime, 50, 9);
        let b = generate_profiles(&regime, 50, 9);
        assert_eq!(a, b, "same seed, same population");
        assert_eq!(a.len(), 50);
        // Most workers have a clear best domain well above their worst.
        let diverse = a
            .iter()
            .filter(|p| {
                let max = p
                    .domain_accuracy
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                let min = p
                    .domain_accuracy
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                max - min > 0.2
            })
            .count();
        assert!(diverse > 25, "only {diverse}/50 workers look diverse");
        // All accuracies are probabilities.
        for p in &a {
            assert_eq!(p.domain_accuracy.len(), 4);
            for &acc in &p.domain_accuracy {
                assert!((0.0..=1.0).contains(&acc));
            }
        }
    }

    #[test]
    fn caps_are_enforced() {
        let regime = DiversityRegime::new(4).with_cap(2, 0.76);
        let profiles = generate_profiles(&regime, 200, 123);
        for p in &profiles {
            assert!(p.domain_accuracy[2] <= 0.76);
        }
        // Other domains still produce experts above the cap sometimes.
        assert!(profiles.iter().any(|p| p.domain_accuracy[0] > 0.85));
    }

    #[test]
    fn average_accuracy_is_the_mean() {
        let p = WorkerProfile {
            name: "X".into(),
            domain_accuracy: vec![0.2, 0.8],
        };
        assert!((p.average_accuracy() - 0.5).abs() < 1e-12);
    }
}
