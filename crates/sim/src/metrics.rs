//! Experiment metrics: per-domain accuracy and distributions.

use std::collections::{HashMap, HashSet};

use icrowd_core::answer::Answer;
use icrowd_core::task::TaskId;

use crate::datasets::Dataset;

/// Accuracy within one domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainAccuracy {
    /// Domain name.
    pub domain: String,
    /// Correctly answered measured tasks.
    pub correct: usize,
    /// Measured tasks in the domain.
    pub total: usize,
}

impl DomainAccuracy {
    /// `correct / total` (zero for an empty domain).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Scores predicted `results` against the dataset's ground truth,
/// skipping `excluded` tasks (the shared qualification/gold set, whose
/// answers the requester knew up front). Tasks without a prediction
/// count as wrong.
///
/// Returns `(overall accuracy, per-domain breakdown in domain-id order)`.
pub fn evaluate(
    dataset: &Dataset,
    results: &HashMap<TaskId, Answer>,
    excluded: &HashSet<TaskId>,
) -> (f64, Vec<DomainAccuracy>) {
    let mut per: Vec<DomainAccuracy> = dataset
        .domains
        .iter()
        .map(|(_, name)| DomainAccuracy {
            domain: name.to_owned(),
            correct: 0,
            total: 0,
        })
        .collect();
    let (mut correct, mut total) = (0usize, 0usize);
    for task in dataset.tasks.iter() {
        if excluded.contains(&task.id) {
            continue;
        }
        let truth = task.ground_truth.expect("dataset tasks carry ground truth");
        let d = task.domain.expect("dataset tasks carry domains").index();
        per[d].total += 1;
        total += 1;
        if results.get(&task.id) == Some(&truth) {
            per[d].correct += 1;
            correct += 1;
        }
    }
    let overall = if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    };
    (overall, per)
}

/// Sorts `(name, count)` assignment pairs descending by count — the
/// Figure 15 presentation order.
pub fn top_workers_by_assignments(mut pairs: Vec<(String, u32)>) -> Vec<(String, u32)> {
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::table1;

    #[test]
    fn evaluate_counts_per_domain() {
        let ds = table1();
        // Answer everything correctly except task 0; exclude task 1.
        let mut results = HashMap::new();
        for t in ds.tasks.iter() {
            let truth = t.ground_truth.unwrap();
            let ans = if t.id == TaskId(0) {
                truth.negated()
            } else {
                truth
            };
            results.insert(t.id, ans);
        }
        let excluded: HashSet<TaskId> = [TaskId(1)].into_iter().collect();
        let (overall, per) = evaluate(&ds, &results, &excluded);
        // 12 tasks - 1 excluded = 11 measured, 10 correct.
        assert!((overall - 10.0 / 11.0).abs() < 1e-12);
        let total: usize = per.iter().map(|d| d.total).sum();
        assert_eq!(total, 11);
        // Task 0 is iPhone: that domain lost one.
        let iphone = per.iter().find(|d| d.domain == "iPhone").unwrap();
        assert_eq!(iphone.correct, iphone.total - 1);
    }

    #[test]
    fn missing_predictions_count_as_wrong() {
        let ds = table1();
        let (overall, _) = evaluate(&ds, &HashMap::new(), &HashSet::new());
        assert_eq!(overall, 0.0);
    }

    #[test]
    fn top_workers_sorted_desc_then_name() {
        let sorted =
            top_workers_by_assignments(vec![("b".into(), 5), ("a".into(), 9), ("c".into(), 5)]);
        assert_eq!(
            sorted,
            vec![("a".into(), 9), ("b".into(), 5), ("c".into(), 5)]
        );
    }

    #[test]
    fn empty_domain_accuracy_is_zero() {
        let d = DomainAccuracy {
            domain: "x".into(),
            correct: 0,
            total: 0,
        };
        assert_eq!(d.accuracy(), 0.0);
    }

    #[test]
    fn all_tasks_excluded_scores_zero_not_nan() {
        // Degenerate campaign where the qualification set is the whole
        // dataset: nothing is measured, and the overall accuracy must be
        // a well-defined 0.0 (not 0/0) with empty per-domain rows.
        let ds = table1();
        let mut results = HashMap::new();
        for t in ds.tasks.iter() {
            results.insert(t.id, t.ground_truth.unwrap());
        }
        let excluded: HashSet<TaskId> = ds.tasks.iter().map(|t| t.id).collect();
        let (overall, per) = evaluate(&ds, &results, &excluded);
        assert_eq!(overall, 0.0);
        assert!(overall.is_finite());
        assert_eq!(per.len(), ds.domains.len(), "domains still enumerated");
        for d in &per {
            assert_eq!((d.correct, d.total), (0, 0), "{}", d.domain);
            assert_eq!(d.accuracy(), 0.0);
        }
    }

    #[test]
    fn fully_excluded_domain_reports_empty_row() {
        // Excluding every task of one domain leaves that domain's row at
        // 0/0 while other domains score normally — per-domain rows stay
        // aligned with `dataset.domains` order.
        let ds = table1();
        let first_domain = ds.tasks.iter().next().unwrap().domain.unwrap();
        let mut results = HashMap::new();
        let mut excluded = HashSet::new();
        for t in ds.tasks.iter() {
            if t.domain == Some(first_domain) {
                excluded.insert(t.id);
            } else {
                results.insert(t.id, t.ground_truth.unwrap());
            }
        }
        let (overall, per) = evaluate(&ds, &results, &excluded);
        assert_eq!(overall, 1.0, "remaining domains answered perfectly");
        let empty = &per[first_domain.index()];
        assert_eq!((empty.correct, empty.total), (0, 0));
        assert_eq!(empty.accuracy(), 0.0);
        assert!(per
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != first_domain.index())
            .all(|(_, d)| d.total > 0 && d.correct == d.total));
    }

    #[test]
    fn partial_predictions_count_missing_as_wrong() {
        // Predict correctly for an arbitrary half of the tasks and omit
        // the rest: accuracy is exactly the covered fraction.
        let ds = table1();
        let mut results = HashMap::new();
        for (i, t) in ds.tasks.iter().enumerate() {
            if i % 2 == 0 {
                results.insert(t.id, t.ground_truth.unwrap());
            }
        }
        let covered = results.len();
        let n = ds.tasks.len();
        let (overall, per) = evaluate(&ds, &results, &HashSet::new());
        assert!((overall - covered as f64 / n as f64).abs() < 1e-12);
        let measured: usize = per.iter().map(|d| d.total).sum();
        assert_eq!(measured, n, "unpredicted tasks still measured");
    }
}
