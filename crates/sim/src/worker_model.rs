//! Stochastic crowd workers.
//!
//! A [`SimWorker`] answers a microtask correctly with probability equal
//! to her accuracy in the task's domain — the simplest model consistent
//! with the paper's Definition 1 and the diversity measurements of
//! Figure 6. Wrong binary answers flip the truth; wrong multi-choice
//! answers pick a uniformly random incorrect choice.

use icrowd_core::answer::Answer;
use icrowd_core::task::Microtask;
use icrowd_platform::market::WorkerBehavior;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profiles::WorkerProfile;

/// A simulated worker with per-domain accuracy.
#[derive(Debug, Clone)]
pub struct SimWorker {
    profile: WorkerProfile,
    rng: StdRng,
}

impl SimWorker {
    /// Creates a worker from a profile, seeding her private RNG.
    pub fn new(profile: WorkerProfile, seed: u64) -> Self {
        Self {
            profile,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The worker's profile.
    pub fn profile(&self) -> &WorkerProfile {
        &self.profile
    }

    /// Her true accuracy on `task` (the simulation-side ground truth the
    /// estimator tries to recover).
    pub fn true_accuracy(&self, task: &Microtask) -> f64 {
        match task.domain {
            Some(d) => self.profile.domain_accuracy[d.index()],
            None => 0.5,
        }
    }
}

impl WorkerBehavior for SimWorker {
    fn answer(&mut self, task: &Microtask) -> Answer {
        let truth = task
            .ground_truth
            .expect("simulated tasks carry ground truth");
        let p = self.true_accuracy(task);
        if self.rng.gen_bool(p.clamp(0.0, 1.0)) {
            truth
        } else if task.num_choices == 2 {
            truth.negated()
        } else {
            // Uniform over the wrong choices.
            let offset = self.rng.gen_range(1..task.num_choices);
            Answer((truth.0 + offset) % task.num_choices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::{Domain, TaskId};

    fn worker(accs: Vec<f64>, seed: u64) -> SimWorker {
        SimWorker::new(
            WorkerProfile {
                name: "T".into(),
                domain_accuracy: accs,
            },
            seed,
        )
    }

    fn task(domain: u16, truth: Answer) -> Microtask {
        Microtask::binary(TaskId(0), "t")
            .with_domain(Domain(domain))
            .with_ground_truth(truth)
    }

    #[test]
    fn empirical_accuracy_tracks_profile() {
        let mut w = worker(vec![0.9, 0.2], 42);
        let t_good = task(0, Answer::YES);
        let t_bad = task(1, Answer::YES);
        let n = 5000;
        let correct_good =
            (0..n).filter(|_| w.answer(&t_good) == Answer::YES).count() as f64 / n as f64;
        let correct_bad =
            (0..n).filter(|_| w.answer(&t_bad) == Answer::YES).count() as f64 / n as f64;
        assert!(
            (correct_good - 0.9).abs() < 0.03,
            "good domain: {correct_good}"
        );
        assert!(
            (correct_bad - 0.2).abs() < 0.03,
            "bad domain: {correct_bad}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let t = task(0, Answer::NO);
        let seq = |seed| {
            let mut w = worker(vec![0.7], seed);
            (0..50).map(|_| w.answer(&t)).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8), "different seeds diverge");
    }

    #[test]
    fn multi_choice_errors_avoid_the_truth() {
        let mut w = worker(vec![0.0], 3); // always wrong
        let mut t = Microtask::binary(TaskId(0), "t")
            .with_domain(Domain(0))
            .with_ground_truth(Answer(1));
        t.num_choices = 4;
        for _ in 0..200 {
            let a = w.answer(&t);
            assert_ne!(a, Answer(1));
            assert!(a.0 < 4);
        }
    }

    #[test]
    fn domainless_tasks_are_coin_flips() {
        let mut w = worker(vec![1.0], 11);
        let t = Microtask::binary(TaskId(0), "t").with_ground_truth(Answer::YES);
        let n = 4000;
        let correct = (0..n).filter(|_| w.answer(&t) == Answer::YES).count() as f64 / n as f64;
        assert!((correct - 0.5).abs() < 0.05);
    }
}
