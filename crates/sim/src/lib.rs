//! # icrowd-sim
//!
//! Simulated crowds, synthetic datasets and the campaign harness that
//! regenerates the paper's experiments.
//!
//! The paper evaluated iCrowd on Amazon Mechanical Turk with real
//! workers; offline we replace the human crowd with stochastic workers
//! whose *per-domain* accuracy matrices reproduce the diversity regime of
//! Figure 6 (each worker strong in one or two domains, weak elsewhere —
//! anchor values from the paper's text are hard-coded in [`profiles`]).
//!
//! * [`worker_model`] — [`SimWorker`]: Bernoulli answers driven by a
//!   domain-accuracy matrix, pluggable into the platform as a
//!   [`icrowd_platform::market::WorkerBehavior`].
//! * [`profiles`] — diversity-regime generators + Figure 6 anchors.
//! * [`datasets`] — YahooQA (110 tasks / 6 domains / 25 workers),
//!   ItemCompare (360 / 4 / 53), the Table-1 worked example, and the
//!   Figure-10 scalability workload.
//! * [`campaign`] — run any approach (iCrowd strategies or the three
//!   baselines) over a dataset on the simulated marketplace.
//! * [`metrics`] — per-domain accuracy, assignment distributions,
//!   approximation errors.

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod campaign;
pub mod datasets;
pub mod diagnostics;
pub mod metrics;
pub mod profiles;
pub mod worker_model;

pub use campaign::{run_campaign, Approach, CampaignConfig, CampaignResult, QualStrategy};
pub use datasets::Dataset;
pub use diagnostics::{estimation_quality, voter_quality, EstimationQuality};
pub use metrics::DomainAccuracy;
pub use profiles::WorkerProfile;
pub use worker_model::SimWorker;
