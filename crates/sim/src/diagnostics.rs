//! Estimation diagnostics: how well does the framework's internal
//! accuracy model track the simulated ground truth?
//!
//! These are the research-side instruments used to calibrate the
//! reproduction (and to debug estimation regressions): per-domain
//! correlation between estimated and true worker accuracy, and the mean
//! true accuracy of the workers who actually voted — the quantity that
//! upper-bounds majority-vote quality.

use icrowd::ICrowd;
use icrowd_core::task::TaskId;
use icrowd_core::worker::WorkerId;

use crate::datasets::Dataset;

/// Pearson correlation; 0.0 when either side is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlating unequal-length slices");
    if a.is_empty() {
        return 0.0;
    }
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va * vb).sqrt()
    }
}

/// Per-domain ranking quality of a campaign's final estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimationQuality {
    /// Domain name.
    pub domain: String,
    /// Pearson correlation between the framework's mean estimated
    /// accuracy over the domain's tasks and the workers' true domain
    /// accuracy.
    pub correlation: f64,
}

/// Measures, per domain, how well the server's estimates rank the
/// dataset's workers (workers are addressed by their campaign external
/// ids `"W1"`, `"W2"`, ... in profile order, the convention of
/// [`crate::campaign::run_campaign`]).
pub fn estimation_quality(server: &mut ICrowd, dataset: &Dataset) -> Vec<EstimationQuality> {
    let mut out = Vec::new();
    for (d, name) in dataset.domains.iter() {
        let domain_tasks: Vec<TaskId> = dataset
            .tasks
            .iter()
            .filter(|t| t.domain == Some(d))
            .map(|t| t.id)
            .collect();
        if domain_tasks.is_empty() {
            continue;
        }
        let mut est = Vec::new();
        let mut tru = Vec::new();
        for (i, profile) in dataset.workers.iter().enumerate() {
            let w = WorkerId(i as u32);
            let values = server.estimator_mut().accuracies_for(w, &domain_tasks);
            est.push(values.iter().sum::<f64>() / values.len() as f64);
            tru.push(profile.domain_accuracy[d.index()]);
        }
        out.push(EstimationQuality {
            domain: name.to_owned(),
            correlation: pearson(&est, &tru),
        });
    }
    out
}

/// Mean *true* accuracy of the workers behind each collected vote,
/// overall — the routing-quality number that upper-bounds majority
/// voting (population mean ≈ random assignment; the best-available
/// expert mean ≈ perfect routing).
pub fn voter_quality(server: &ICrowd, dataset: &Dataset, exclude: &[TaskId]) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for task in dataset.tasks.iter() {
        if exclude.contains(&task.id) {
            continue;
        }
        let d = task.domain.expect("labelled").index();
        for v in server.consensus().votes(task.id).votes() {
            sum += dataset.workers[v.worker.index()].domain_accuracy[d];
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd::core::{Answer, Tick};
    use icrowd::platform::ExternalQuestionServer;
    use icrowd::{AssignStrategy, ICrowdBuilder};
    use icrowd_core::config::{ICrowdConfig, WarmupConfig};

    use crate::campaign::{build_graph, select_gold, CampaignConfig, MetricChoice};
    use crate::datasets::table1;

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0, "constant side");
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn quality_instruments_run_on_a_real_campaign() {
        let ds = table1();
        let config = CampaignConfig {
            metric: MetricChoice::Jaccard,
            icrowd: ICrowdConfig {
                similarity_threshold: 0.4,
                warmup: WarmupConfig {
                    num_qualification: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let graph = build_graph(&ds, &config);
        let gold = select_gold(&ds, &graph, &config);
        let mut srv = ICrowdBuilder::new(ds.tasks.clone())
            .config(config.icrowd.clone())
            .strategy(AssignStrategy::Adapt)
            .graph(graph)
            .qualification(gold.clone())
            .build();
        // Drive the crowd to completion.
        let workers = ds.spawn_workers(7);
        let mut behaviors = workers;
        let mut tick = 0u64;
        while !srv.is_complete() && tick < 2000 {
            for (i, w) in behaviors.iter_mut().enumerate() {
                let name = format!("W{}", i + 1);
                if let Some(t) = srv.request_task(&name, Tick(tick)) {
                    let ans: Answer =
                        icrowd::platform::market::WorkerBehavior::answer(w, &ds.tasks[t]);
                    srv.submit_answer(&name, t, ans, Tick(tick));
                }
                tick += 1;
            }
        }
        assert!(srv.is_complete());

        let quality = estimation_quality(&mut srv, &ds);
        assert_eq!(quality.len(), 3, "one row per domain");
        for q in &quality {
            assert!((-1.0..=1.0).contains(&q.correlation), "{q:?}");
        }
        let vq = voter_quality(&srv, &ds, &gold);
        assert!((0.0..=1.0).contains(&vq));
        // The crowd has experts at ~0.9 and a spammer at 0.35; any voter
        // mix lands strictly inside that band.
        assert!(vq > 0.35 && vq < 0.95, "voter quality {vq}");
    }
}
