//! The Figure-10 scalability workload.
//!
//! The paper's efficiency experiment: "Initially the microtask set was
//! empty. We inserted 0.2 million microtasks at each time and ran iCrowd
//! to evaluate the efficiency. We also considered the maximal number of
//! neighbors ... given a maximal neighbor number, say 40, and a
//! microtask, we randomly selected 40 microtasks as neighbors". This
//! module generates exactly that: a large task set and random capped
//! neighbor lists, without ever materializing an `O(n^2)` metric.

use icrowd_core::answer::Answer;
use icrowd_core::task::{Microtask, TaskId, TaskSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` synthetic microtasks (minimal text; the graph comes
/// from [`scalability_edges`], not from a text metric).
pub fn scalability_tasks(n: usize) -> TaskSet {
    let mut tasks = TaskSet::new();
    for _ in 0..n {
        tasks.push_with(|id| {
            Microtask::binary(id, format!("scale-{id}")).with_ground_truth(Answer::YES)
        });
    }
    tasks
}

/// Random neighbor edges: each task draws up to `max_neighbors` random
/// neighbors with similarity in `[0.5, 1.0)`, the paper's construction.
///
/// Duplicate pairs are deduplicated downstream by the graph constructor
/// (keeping the max weight); self-pairs are skipped.
pub fn scalability_edges(n: usize, max_neighbors: usize, seed: u64) -> Vec<(TaskId, TaskId, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * max_neighbors);
    for i in 0..n as u32 {
        for _ in 0..max_neighbors {
            let j = rng.gen_range(0..n as u32);
            if j == i {
                continue;
            }
            edges.push((TaskId(i), TaskId(j), rng.gen_range(0.5..1.0)));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_graph::GraphBuilder;

    #[test]
    fn tasks_have_ids_and_truth() {
        let ts = scalability_tasks(100);
        assert_eq!(ts.len(), 100);
        assert!(ts.iter().all(|t| t.ground_truth.is_some()));
    }

    #[test]
    fn edges_respect_bounds() {
        let edges = scalability_edges(50, 8, 3);
        assert!(edges.len() <= 50 * 8);
        for &(a, b, s) in &edges {
            assert_ne!(a, b);
            assert!(a.index() < 50 && b.index() < 50);
            assert!((0.5..1.0).contains(&s));
        }
    }

    #[test]
    fn builds_into_a_capped_graph() {
        let edges = scalability_edges(200, 10, 9);
        let g = GraphBuilder::new(0.5)
            .with_max_neighbors(10)
            .build_from_edges(200, edges);
        assert!(g.num_edges() > 0);
        // The cap is per endpoint with union semantics, so degrees can
        // exceed the cap but must stay within a small factor of it.
        let max_deg = (0..200u32)
            .map(|i| g.neighbor_count(TaskId(i)))
            .max()
            .unwrap();
        assert!(max_deg <= 40, "degree {max_deg} explodes past the cap");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(scalability_edges(30, 4, 7), scalability_edges(30, 4, 7));
    }
}
