//! The ItemCompare dataset substitute — Section 6.1, dataset 2.
//!
//! 360 comparison microtasks, 90 per domain (Food, NBA, Auto, Country),
//! and a 53-worker population in the Figure-6b regime: the Country and
//! NBA anchor workers from the paper's text, and an Auto domain whose
//! best worker caps at 0.76 (the condition behind iCrowd's limited win
//! there, Section 6.4).

use icrowd_core::task::{DomainRegistry, TaskSet};

use super::{generate_domain_tasks, seeded_rng, Dataset};
use crate::profiles::{generate_profiles, item_compare_anchors, DiversityRegime};

/// Domain names in Figure 6b order.
pub const ITEM_COMPARE_DOMAINS: [&str; 4] = ["Food", "NBA", "Auto", "Country"];

const FOOD_VOCAB: &[&str] = &[
    "chocolate",
    "honey",
    "calories",
    "butter",
    "cheese",
    "yogurt",
    "avocado",
    "almond",
    "pasta",
    "quinoa",
    "salmon",
    "lentil",
    "spinach",
    "oatmeal",
    "banana",
    "peanut",
    "granola",
    "tofu",
    "broccoli",
    "sugar",
];

const NBA_VOCAB: &[&str] = &[
    "lakers",
    "bucks",
    "celtics",
    "championship",
    "playoffs",
    "rebound",
    "pointguard",
    "dunk",
    "threepointer",
    "spurs",
    "bulls",
    "knicks",
    "warriors",
    "roster",
    "draft",
    "mvp",
    "finals",
    "assist",
    "defense",
    "franchise",
];

const AUTO_VOCAB: &[&str] = &[
    "toyota",
    "camry",
    "lexus",
    "sedan",
    "mpg",
    "horsepower",
    "hybrid",
    "torque",
    "chassis",
    "hatchback",
    "honda",
    "accord",
    "fuel",
    "transmission",
    "suv",
    "mileage",
    "engine",
    "brake",
    "warranty",
    "airbag",
];

const COUNTRY_VOCAB: &[&str] = &[
    "brazil",
    "canada",
    "area",
    "population",
    "capital",
    "border",
    "continent",
    "gdp",
    "export",
    "territory",
    "landmass",
    "coastline",
    "currency",
    "republic",
    "census",
    "hemisphere",
    "language",
    "climate",
    "province",
    "region",
];

/// Builds the ItemCompare dataset.
pub fn item_compare(seed: u64) -> Dataset {
    let mut rng = seeded_rng(seed);
    let mut tasks = TaskSet::new();
    let mut domains = DomainRegistry::new();
    let vocabs: [&[&str]; 4] = [FOOD_VOCAB, NBA_VOCAB, AUTO_VOCAB, COUNTRY_VOCAB];
    for (name, vocab) in ITEM_COMPARE_DOMAINS.iter().zip(vocabs) {
        generate_domain_tasks(
            &mut tasks,
            &mut domains,
            name,
            vocab,
            "Compare the two items",
            90,
            &mut rng,
        );
    }

    let mut workers = item_compare_anchors();
    // Auto (domain index 2) is capped: its best worker stays at 0.76.
    let regime = DiversityRegime::new(4).with_cap(2, 0.74);
    workers.extend(generate_profiles(
        &regime,
        53 - workers.len(),
        seed ^ 0xBEEF,
    ));

    Dataset {
        name: "ItemCompare".into(),
        tasks,
        domains,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table4() {
        let ds = item_compare(1);
        assert_eq!(ds.tasks.len(), 360);
        assert_eq!(ds.domains.len(), 4);
        assert_eq!(ds.workers.len(), 53);
    }

    #[test]
    fn ninety_tasks_per_domain() {
        let ds = item_compare(1);
        for d in 0..4u16 {
            let count = ds
                .tasks
                .iter()
                .filter(|t| t.domain == Some(icrowd_core::task::Domain(d)))
                .count();
            assert_eq!(count, 90);
        }
    }

    #[test]
    fn auto_domain_has_no_great_worker_but_others_do() {
        let ds = item_compare(1);
        let best = |d: usize| {
            ds.workers
                .iter()
                .map(|w| w.domain_accuracy[d])
                .fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(best(2) <= 0.76, "Auto best is capped: {}", best(2));
        assert!(best(1) > 0.9, "NBA has a strong expert: {}", best(1));
        assert!(best(3) >= 0.95, "Country expert anchor: {}", best(3));
    }

    #[test]
    fn country_anchor_is_top_in_country_but_low_in_nba() {
        let ds = item_compare(1);
        let anchor = &ds.workers[0];
        assert_eq!(anchor.name, "A2V99E4YEP14RI");
        let country_rank = ds
            .workers
            .iter()
            .filter(|w| w.domain_accuracy[3] > anchor.domain_accuracy[3])
            .count();
        assert_eq!(country_rank, 0, "anchor is the best Country worker");
        let nba_better = ds
            .workers
            .iter()
            .filter(|w| w.domain_accuracy[1] > anchor.domain_accuracy[1])
            .count();
        assert!(nba_better > 5, "anchor is low-ranked in NBA");
    }
}
