//! The paper's Table 1: twelve entity-resolution microtasks.
//!
//! Each task asks whether two product records describe the same model;
//! the token column of Table 1 is reproduced exactly, so Jaccard at
//! threshold 0.5 regenerates the Figure 3 similarity graph (including
//! the 4/7 edge between t2 and t7).

use icrowd_core::answer::Answer;
use icrowd_core::task::{DomainRegistry, Microtask, TaskSet};

use super::Dataset;
use crate::profiles::WorkerProfile;

/// The Table-1 record pairs and their (manually judged) match labels.
/// Domains follow the paper's narrative: iPhone, iPod, iPad topics.
const TABLE1: &[(&str, &str, &str, bool)] = &[
    (
        "iphone 4 WiFi 32GB",
        "iphone four 3G black",
        "iPhone",
        false,
    ),
    (
        "ipod touch 32GB WiFi",
        "ipod touch headphone",
        "iPod",
        false,
    ),
    (
        "ipad 3 WiFi 32GB black",
        "new ipad cover white",
        "iPad",
        false,
    ),
    (
        "iphone four WiFi 16GB",
        "iphone four 3G 16GB",
        "iPhone",
        false,
    ),
    ("iphone 4 case black", "iphone 4 WiFi 32GB", "iPhone", false),
    (
        "iphone 4 WiFi 32GB",
        "iphone four WiFi 32GB",
        "iPhone",
        true,
    ),
    (
        "ipod touch 32GB WiFi",
        "ipod touch case black",
        "iPod",
        false,
    ),
    ("ipod touch headphone", "ipod nano headphone", "iPod", false),
    ("ipod touch WiFi", "ipod nano headphone", "iPod", false),
    (
        "ipad 3 WiFi 32GB black",
        "iphone 4 cover white",
        "iPad",
        false,
    ),
    (
        "ipad 4 WiFi 16GB",
        "ipad retina display WiFi 16GB",
        "iPad",
        true,
    ),
    ("ipad 3 cover white", "new ipad cover white", "iPad", false),
];

/// Builds the Table-1 dataset with a small three-specialist crowd
/// (one expert per product line, echoing the paper's running example).
pub fn table1() -> Dataset {
    let mut domains = DomainRegistry::new();
    let tasks: TaskSet = TABLE1
        .iter()
        .enumerate()
        .map(|(i, &(a, b, dom, matched))| {
            let d = domains.intern(dom);
            // Task text = the deduplicated token union, exactly Table 1's
            // third column.
            let mut tokens: Vec<&str> = a.split_whitespace().collect();
            for t in b.split_whitespace() {
                if !tokens.contains(&t) {
                    tokens.push(t);
                }
            }
            Microtask::binary(icrowd_core::task::TaskId(i as u32), tokens.join(" "))
                .with_domain(d)
                .with_ground_truth(if matched { Answer::YES } else { Answer::NO })
        })
        .collect();

    let workers = vec![
        WorkerProfile {
            name: "IPHONE-EXPERT".into(),
            domain_accuracy: vec![0.92, 0.45, 0.40],
        },
        WorkerProfile {
            name: "IPOD-EXPERT".into(),
            domain_accuracy: vec![0.40, 0.90, 0.45],
        },
        WorkerProfile {
            name: "IPAD-EXPERT".into(),
            domain_accuracy: vec![0.45, 0.40, 0.93],
        },
        WorkerProfile {
            name: "GENERALIST".into(),
            domain_accuracy: vec![0.65, 0.65, 0.65],
        },
        WorkerProfile {
            name: "SPAMMER".into(),
            domain_accuracy: vec![0.35, 0.35, 0.35],
        },
    ];

    Dataset {
        name: "Table1".into(),
        tasks,
        domains,
        workers,
    }
}

/// The original record pairs, for presentation (bench `table1`).
pub fn table1_pairs() -> Vec<(String, String)> {
    TABLE1
        .iter()
        .map(|&(a, b, _, _)| (a.to_owned(), b.to_owned()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::TaskId;
    use icrowd_graph::GraphBuilder;
    use icrowd_text::{JaccardSimilarity, TaskSimilarity, Tokenizer};

    #[test]
    fn twelve_tasks_three_domains() {
        let ds = table1();
        assert_eq!(ds.tasks.len(), 12);
        assert_eq!(ds.domains.len(), 3);
        assert_eq!(ds.domain_name(TaskId(0)), "iPhone");
        assert_eq!(ds.domain_name(TaskId(1)), "iPod");
        assert_eq!(ds.domain_name(TaskId(10)), "iPad");
    }

    #[test]
    fn token_sets_match_table1_column_three() {
        let ds = table1();
        assert_eq!(ds.tasks[TaskId(0)].text, "iphone 4 WiFi 32GB four 3G black");
        assert_eq!(ds.tasks[TaskId(10)].text, "ipad 4 WiFi 16GB retina display");
    }

    #[test]
    fn figure3_graph_reproduces_from_these_tasks() {
        let ds = table1();
        let metric = JaccardSimilarity::new(&ds.tasks, &Tokenizer::keeping_stopwords());
        assert!(
            (metric.similarity(TaskId(1), TaskId(6)) - 4.0 / 7.0).abs() < 1e-12,
            "the t2–t7 edge weight from Figure 3"
        );
        let g = GraphBuilder::new(0.5).build(&ds.tasks, &metric);
        assert!(g.num_edges() >= 6, "the example graph is well connected");
    }

    #[test]
    fn ground_truth_matches_paper_intuition() {
        let ds = table1();
        // t6: "iphone 4 WiFi 32GB" vs "iphone four WiFi 32GB" — same model.
        assert_eq!(ds.tasks[TaskId(5)].ground_truth, Some(Answer::YES));
        // t11: "ipad 4" is colloquially the "ipad retina display" model.
        assert_eq!(ds.tasks[TaskId(10)].ground_truth, Some(Answer::YES));
        // t1: different models.
        assert_eq!(ds.tasks[TaskId(0)].ground_truth, Some(Answer::NO));
    }
}
