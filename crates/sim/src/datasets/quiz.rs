//! A four-choice quiz dataset — exercising the paper's note that the
//! techniques "can be extended to microtasks with more than two
//! choices" (Section 2.1).
//!
//! Two domains (history, science), four answer choices per microtask.
//! Majority voting needs `(k+1)/2` agreement among `k` answers, which is
//! harder to reach with four choices — the regime where accuracy-aware
//! assignment pays the most.

use icrowd_core::answer::Answer;
use icrowd_core::task::{DomainRegistry, Microtask, TaskSet};
use rand::Rng;

use super::{seeded_rng, Dataset};
use crate::profiles::WorkerProfile;

const HISTORY_VOCAB: &[&str] = &[
    "empire",
    "treaty",
    "dynasty",
    "revolution",
    "monarch",
    "crusade",
    "republic",
    "armistice",
    "colony",
    "senate",
    "pharaoh",
    "feudal",
    "reformation",
    "parliament",
    "siege",
];

const SCIENCE_VOCAB: &[&str] = &[
    "electron", "genome", "isotope", "catalyst", "neuron", "quasar", "enzyme", "polymer",
    "momentum", "photon", "mitosis", "entropy", "tectonic", "antibody", "spectrum",
];

/// Builds the quiz dataset: 80 four-choice microtasks, 2 domains,
/// 16 workers in the usual diversity regime.
pub fn quiz(seed: u64) -> Dataset {
    let mut rng = seeded_rng(seed ^ 0x4012);
    let mut tasks = TaskSet::new();
    let mut domains = DomainRegistry::new();
    for (name, vocab) in [("History", HISTORY_VOCAB), ("Science", SCIENCE_VOCAB)] {
        let domain = domains.intern(name);
        for _ in 0..40 {
            let n = rng.gen_range(6..=9usize);
            let words: Vec<&str> = (0..n)
                .map(|_| vocab[rng.gen_range(0..vocab.len())])
                .collect();
            let truth = Answer(rng.gen_range(0..4u8));
            let text = format!("Which option is correct: {}", words.join(" "));
            tasks.push_with(|id| {
                let mut t = Microtask::binary(id, text.clone());
                t.num_choices = 4;
                t.with_domain(domain).with_ground_truth(truth)
            });
        }
    }

    // Eight experts per domain-ish split plus generalists.
    let mut workers = Vec::new();
    for i in 0..6 {
        workers.push(WorkerProfile {
            name: format!("HIST-{i}"),
            domain_accuracy: vec![0.78 + 0.02 * f64::from(i % 3), 0.30],
        });
        workers.push(WorkerProfile {
            name: format!("SCI-{i}"),
            domain_accuracy: vec![0.30, 0.78 + 0.02 * f64::from(i % 3)],
        });
    }
    for i in 0..4 {
        workers.push(WorkerProfile {
            name: format!("GEN-{i}"),
            domain_accuracy: vec![0.45, 0.45],
        });
    }

    Dataset {
        name: "Quiz".into(),
        tasks,
        domains,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_choices() {
        let ds = quiz(1);
        assert_eq!(ds.tasks.len(), 80);
        assert_eq!(ds.domains.len(), 2);
        assert_eq!(ds.workers.len(), 16);
        for t in ds.tasks.iter() {
            assert_eq!(t.num_choices, 4);
            assert!(t.ground_truth.unwrap().0 < 4);
        }
    }

    #[test]
    fn wrong_answers_land_on_other_choices() {
        let ds = quiz(2);
        let mut workers = ds.spawn_workers(3);
        let task = &ds.tasks[icrowd_core::task::TaskId(0)];
        let truth = task.ground_truth.unwrap();
        let mut wrong_seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let a = icrowd_platform::market::WorkerBehavior::answer(&mut workers[15], task);
            assert!(a.0 < 4);
            if a != truth {
                wrong_seen.insert(a.0);
            }
        }
        assert_eq!(wrong_seen.len(), 3, "errors spread over all wrong choices");
    }

    #[test]
    fn deterministic() {
        assert_eq!(quiz(9).tasks.as_slice(), quiz(9).tasks.as_slice());
    }
}
