//! The YahooQA dataset substitute — Section 6.1, dataset 1.
//!
//! 110 question-answer evaluation microtasks over six domains (2006 FIFA
//! World Cup, Books & Authors, Diet & Fitness, Home Schooling, Hunting,
//! Philosophy) and a 25-worker population in the Figure-6a diversity
//! regime, including the two anchor workers quoted in the paper's text.

use icrowd_core::task::{DomainRegistry, TaskSet};

use super::{generate_domain_tasks, seeded_rng, Dataset};
use crate::profiles::{generate_profiles, yahooqa_anchors, DiversityRegime};

/// Domain names in Figure 6a order.
pub const YAHOOQA_DOMAINS: [&str; 6] = [
    "FIFA",
    "Books&Authors",
    "Diet&Fitness",
    "HomeSchooling",
    "Hunting",
    "Philosophy",
];

const FIFA_VOCAB: &[&str] = &[
    "fifa", "worldcup", "2006", "germany", "goal", "striker", "midfield", "penalty", "zidane",
    "italy", "france", "referee", "offside", "group", "knockout", "stadium", "coach", "squad",
    "keeper", "final",
];

const BOOKS_VOCAB: &[&str] = &[
    "novel",
    "author",
    "chapter",
    "publisher",
    "fiction",
    "poetry",
    "manuscript",
    "literature",
    "editor",
    "paperback",
    "hemingway",
    "austen",
    "dickens",
    "plot",
    "narrator",
    "memoir",
    "anthology",
    "prose",
    "bestseller",
    "library",
];

const DIET_VOCAB: &[&str] = &[
    "calorie",
    "protein",
    "workout",
    "cardio",
    "vitamin",
    "carbohydrate",
    "metabolism",
    "nutrition",
    "fiber",
    "weight",
    "muscle",
    "exercise",
    "fasting",
    "supplement",
    "treadmill",
    "yoga",
    "hydration",
    "sugar",
    "cholesterol",
    "fitness",
];

const HOMESCHOOL_VOCAB: &[&str] = &[
    "homeschool",
    "curriculum",
    "lesson",
    "parent",
    "grade",
    "textbook",
    "tutor",
    "worksheet",
    "phonics",
    "socialization",
    "transcript",
    "coop",
    "unschooling",
    "assessment",
    "kindergarten",
    "syllabus",
    "montessori",
    "classical",
    "portfolio",
    "fieldtrip",
];

const HUNTING_VOCAB: &[&str] = &[
    "hunting",
    "deer",
    "rifle",
    "bow",
    "season",
    "camouflage",
    "scent",
    "blind",
    "decoy",
    "antler",
    "turkey",
    "shotgun",
    "caliber",
    "scope",
    "tracking",
    "elk",
    "bait",
    "license",
    "stand",
    "gamebird",
];

const PHILOSOPHY_VOCAB: &[&str] = &[
    "philosophy",
    "kant",
    "ethics",
    "metaphysics",
    "epistemology",
    "nietzsche",
    "logic",
    "existentialism",
    "plato",
    "aristotle",
    "utilitarian",
    "phenomenology",
    "dualism",
    "stoic",
    "dialectic",
    "apriori",
    "ontology",
    "socrates",
    "descartes",
    "hume",
];

/// Per-domain task counts summing to 110 (the paper gives only the
/// total; we split nearly evenly).
const COUNTS: [usize; 6] = [19, 19, 18, 18, 18, 18];

/// Builds the YahooQA dataset.
pub fn yahooqa(seed: u64) -> Dataset {
    let mut rng = seeded_rng(seed);
    let mut tasks = TaskSet::new();
    let mut domains = DomainRegistry::new();
    let vocabs: [&[&str]; 6] = [
        FIFA_VOCAB,
        BOOKS_VOCAB,
        DIET_VOCAB,
        HOMESCHOOL_VOCAB,
        HUNTING_VOCAB,
        PHILOSOPHY_VOCAB,
    ];
    for ((name, vocab), count) in YAHOOQA_DOMAINS.iter().zip(vocabs).zip(COUNTS) {
        generate_domain_tasks(
            &mut tasks,
            &mut domains,
            name,
            vocab,
            "Does this answer address the question",
            count,
            &mut rng,
        );
    }

    let mut workers = yahooqa_anchors();
    let regime = DiversityRegime::new(6);
    workers.extend(generate_profiles(&regime, 25 - workers.len(), seed ^ 0xACE));

    Dataset {
        name: "YahooQA".into(),
        tasks,
        domains,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::TaskId;
    use icrowd_text::{CosineTfIdf, TaskSimilarity, Tokenizer};

    #[test]
    fn shape_matches_table4() {
        let ds = yahooqa(1);
        assert_eq!(ds.tasks.len(), 110);
        assert_eq!(ds.domains.len(), 6);
        assert_eq!(ds.workers.len(), 25);
        assert!(ds.tasks.iter().all(|t| t.ground_truth.is_some()));
        assert!(ds.tasks.iter().all(|t| t.domain.is_some()));
    }

    #[test]
    fn same_domain_tasks_are_lexically_closer() {
        let ds = yahooqa(1);
        let metric = CosineTfIdf::new(&ds.tasks, &Tokenizer::new());
        // Tasks 0 and 1 are both FIFA; task 109 is Philosophy.
        let same = metric.similarity(TaskId(0), TaskId(1));
        let cross = metric.similarity(TaskId(0), TaskId(109));
        assert!(
            same > cross,
            "same-domain {same} should exceed cross-domain {cross}"
        );
    }

    #[test]
    fn anchors_lead_the_roster() {
        let ds = yahooqa(1);
        assert_eq!(ds.workers[0].name, "A2YEBGPVQ41ESM");
        assert_eq!(ds.workers[1].name, "A1H8Y5D04A7T5E");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = yahooqa(42);
        let b = yahooqa(42);
        assert_eq!(a.tasks.as_slice(), b.tasks.as_slice());
        assert_eq!(a.workers, b.workers);
        let c = yahooqa(43);
        assert_ne!(
            a.tasks.as_slice()[0].text,
            c.tasks.as_slice()[0].text,
            "different seeds differ"
        );
    }
}
