//! Synthetic datasets mirroring the paper's evaluation data.
//!
//! Task *text* only feeds the similarity graph, so what matters is the
//! topical block structure: same-domain tasks share vocabulary,
//! cross-domain tasks don't. Each generator draws task text from
//! per-domain vocabulary pools (plus a few common words so graphs aren't
//! trivially disconnected), attaches ground truth and domain labels, and
//! pairs the tasks with a worker population in the Figure-6 diversity
//! regime.

pub mod item_compare;
pub mod quiz;
pub mod scale;
pub mod table1;
pub mod yahooqa;

use icrowd_core::answer::Answer;
use icrowd_core::task::{DomainRegistry, Microtask, TaskId, TaskSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profiles::WorkerProfile;
use crate::worker_model::SimWorker;

pub use item_compare::item_compare;
pub use quiz::quiz;
pub use scale::{scalability_edges, scalability_tasks};
pub use table1::table1;
pub use yahooqa::yahooqa;

/// Looks a generated dataset up by its CLI name. The same `(name,
/// seed)` pair always regenerates the identical dataset, which is what
/// lets a load-generator client rebuild the worker models a remote
/// campaign server announced in its `HELLO` response.
pub fn by_name(name: &str, seed: u64) -> Option<Dataset> {
    match name {
        "yahooqa" => Some(yahooqa(seed)),
        "item_compare" | "itemcompare" => Some(item_compare(seed)),
        "table1" => Some(table1()),
        "quiz" => Some(quiz(seed)),
        _ => None,
    }
}

/// A dataset: tasks with domains + a worker population.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (`"YahooQA"`, `"ItemCompare"`, ...).
    pub name: String,
    /// The microtasks, with ground truth and domain labels.
    pub tasks: TaskSet,
    /// Domain id ↔ name mapping.
    pub domains: DomainRegistry,
    /// The worker population's accuracy profiles.
    pub workers: Vec<WorkerProfile>,
}

impl Dataset {
    /// Instantiates the worker population as stochastic workers, each
    /// with a private RNG derived from `seed`.
    pub fn spawn_workers(&self, seed: u64) -> Vec<SimWorker> {
        self.workers
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let salt = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                SimWorker::new(p.clone(), seed ^ salt)
            })
            .collect()
    }

    /// The domain name of a task (panics on unlabeled tasks).
    pub fn domain_name(&self, task: TaskId) -> &str {
        let d = self.tasks[task].domain.expect("dataset tasks are labelled");
        self.domains.name(d).expect("domain registered")
    }

    /// Table-4-style statistics: `(tasks, domains, workers)`.
    pub fn statistics(&self) -> (usize, usize, usize) {
        (self.tasks.len(), self.domains.len(), self.workers.len())
    }
}

/// Generates `count` tasks for one domain by sampling words from its
/// vocabulary pool (plus shared filler), formatted as a question.
pub(crate) fn generate_domain_tasks(
    tasks: &mut TaskSet,
    domains: &mut DomainRegistry,
    domain_name: &str,
    vocab: &[&str],
    template: &str,
    count: usize,
    rng: &mut StdRng,
) {
    const COMMON: &[&str] = &["best", "more", "compare", "which", "verify", "question"];
    let domain = domains.intern(domain_name);
    for _ in 0..count {
        // 6-9 domain words + 1-2 common words.
        let n_domain = rng.gen_range(6..=9usize);
        let n_common = rng.gen_range(1..=2usize);
        let mut words = Vec::with_capacity(n_domain + n_common);
        for _ in 0..n_domain {
            words.push(vocab[rng.gen_range(0..vocab.len())]);
        }
        for _ in 0..n_common {
            words.push(COMMON[rng.gen_range(0..COMMON.len())]);
        }
        let text = format!("{template}: {}", words.join(" "));
        let truth = if rng.gen_bool(0.5) {
            Answer::YES
        } else {
            Answer::NO
        };
        tasks.push_with(|id| {
            Microtask::binary(id, text.clone())
                .with_domain(domain)
                .with_ground_truth(truth)
        });
    }
}

/// Shuffles task order across domains... actually datasets keep tasks
/// grouped by domain (matching how the paper's batches were organized);
/// helper kept for workloads that want interleaving.
pub(crate) fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawned_workers_match_profiles_and_seed() {
        let ds = yahooqa(7);
        let w1 = ds.spawn_workers(1);
        let w2 = ds.spawn_workers(1);
        assert_eq!(w1.len(), ds.workers.len());
        assert_eq!(w1[0].profile(), w2[0].profile());
    }

    #[test]
    fn statistics_match_table4() {
        let (t, d, w) = yahooqa(7).statistics();
        assert_eq!((t, d, w), (110, 6, 25), "YahooQA row of Table 4");
        let (t, d, w) = item_compare(7).statistics();
        assert_eq!((t, d, w), (360, 4, 53), "ItemCompare row of Table 4");
    }
}
