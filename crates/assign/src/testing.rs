//! Worker performance testing — Step 3 of the assignment framework
//! (Section 4.1).
//!
//! After the optimal assignment, some active workers remain idle because
//! no top-worker set contains them — either iCrowd knows too little about
//! them or they rank below everyone on every task. Rather than waste
//! their request, iCrowd *tests* them on a microtask chosen by two
//! factors:
//!
//! 1. **Uncertainty** — prefer tasks where the worker's estimate carries
//!    high beta-posterior variance (little nearby evidence).
//! 2. **Co-worker quality** — prefer tasks whose already-assigned workers
//!    have high estimated accuracies, so the eventual consensus used to
//!    grade the tested worker is trustworthy.
//!
//! The score is the product of the two factors; candidates are tasks
//! with remaining capacity that the worker has not answered.

use icrowd_core::task::TaskId;
use icrowd_core::worker::WorkerId;
use icrowd_estimate::AccuracyEstimator;

/// Quality factor assigned to a task with no co-workers yet: below any
/// plausible mean co-worker accuracy so tested workers land next to
/// existing evidence when possible.
pub const EMPTY_COWORKER_QUALITY: f64 = 0.25;

/// Picks the performance-test microtask for an idle worker.
///
/// `candidates` lists `(task, current co-workers)` pairs with remaining
/// capacity that `worker` has not been assigned. Returns `None` when
/// `candidates` is empty.
///
/// Score: `p̂(worker, task) × variance(worker, task) × quality(co-workers)`,
/// where quality is the mean estimated accuracy of the co-workers on the
/// task (or [`EMPTY_COWORKER_QUALITY`] when there are none). The paper's
/// two factors are variance and co-worker quality; we additionally weight
/// by the tested worker's own estimate so exploration spends its vote
/// where the worker is *plausibly* competent — a test whose subject is
/// probably wrong both risks the task's majority and yields a weak
/// Equation-(5) grading. Ties break toward the smaller task id.
pub fn performance_test_assignment(
    estimator: &mut AccuracyEstimator,
    worker: WorkerId,
    candidates: &[(TaskId, Vec<WorkerId>)],
) -> Option<TaskId> {
    let mut best: Option<(f64, TaskId)> = None;
    for (task, coworkers) in candidates {
        let variance = estimator.uncertainty(worker, *task);
        let quality = if coworkers.is_empty() {
            EMPTY_COWORKER_QUALITY
        } else {
            // Single-task sparse lookups: cost independent of |T|.
            let sum: f64 = coworkers
                .iter()
                .map(|&cw| estimator.accuracies_for(cw, &[*task])[0])
                .sum();
            sum / coworkers.len() as f64
        };
        let own = estimator.accuracies_for(worker, &[*task])[0];
        let score = own * variance * quality;
        let better = match best {
            None => true,
            Some((bs, bt)) => score > bs + 1e-15 || ((score - bs).abs() <= 1e-15 && *task < bt),
        };
        if better {
            best = Some((score, *task));
        }
    }
    best.map(|(_, t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::answer::Answer;
    use icrowd_core::config::ICrowdConfig;
    use icrowd_estimate::EstimationMode;
    use icrowd_graph::SimilarityGraph;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    fn w(i: u32) -> WorkerId {
        WorkerId(i)
    }

    /// Tasks 0-1 form one topical block, tasks 2-3 another.
    fn estimator() -> AccuracyEstimator {
        let g = SimilarityGraph::from_edges(4, &[(t(0), t(1), 0.9), (t(2), t(3), 0.9)]);
        AccuracyEstimator::new(g, ICrowdConfig::default(), EstimationMode::Centered)
    }

    #[test]
    fn prefers_the_unexplored_block() {
        let mut e = estimator();
        // Worker answered tasks in block A; block B is unexplored.
        e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
        e.record_qualification(w(0), t(1), Answer::YES, Answer::YES);
        let candidates = vec![(t(1), vec![]), (t(2), vec![])];
        let pick = performance_test_assignment(&mut e, w(0), &candidates);
        assert_eq!(
            pick,
            Some(t(2)),
            "the unexplored block carries higher variance"
        );
    }

    #[test]
    fn prefers_reliable_coworkers_at_equal_uncertainty() {
        let mut e = estimator();
        // Make worker 1 visibly good and worker 2 visibly bad on block B.
        e.record_qualification(w(1), t(2), Answer::YES, Answer::YES);
        e.record_qualification(w(1), t(3), Answer::YES, Answer::YES);
        e.record_qualification(w(2), t(2), Answer::NO, Answer::YES);
        e.record_qualification(w(2), t(3), Answer::NO, Answer::YES);
        // Worker 0 has no evidence anywhere: variance is equal on both
        // candidates; co-worker quality decides.
        let candidates = vec![(t(2), vec![w(2)]), (t(3), vec![w(1)])];
        let pick = performance_test_assignment(&mut e, w(0), &candidates);
        assert_eq!(pick, Some(t(3)), "the good co-worker makes a better judge");
    }

    #[test]
    fn tasks_with_coworkers_beat_empty_tasks() {
        let mut e = estimator();
        e.record_qualification(w(1), t(2), Answer::YES, Answer::YES);
        let candidates = vec![(t(0), vec![]), (t(2), vec![w(1)])];
        let pick = performance_test_assignment(&mut e, w(0), &candidates);
        assert_eq!(pick, Some(t(2)));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut e = estimator();
        assert_eq!(performance_test_assignment(&mut e, w(0), &[]), None);
    }

    #[test]
    fn ties_break_to_smaller_task_id() {
        let mut e = estimator();
        // No evidence at all: both candidates score identically.
        let candidates = vec![(t(3), vec![]), (t(1), vec![])];
        let pick = performance_test_assignment(&mut e, w(0), &candidates);
        assert_eq!(pick, Some(t(1)));
    }
}
