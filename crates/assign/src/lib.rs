//! # icrowd-assign
//!
//! Adaptive microtask assignment — Sections 4 and 5 of the iCrowd paper.
//!
//! * [`top_workers`] — Definition 3: for every uncompleted microtask, the
//!   `k' = k − |W^d(t)|` active workers with the highest estimated
//!   accuracies.
//! * [`greedy`] — Algorithm 3: the greedy approximation to the NP-hard
//!   optimal microtask assignment (disjoint top-worker sets maximizing
//!   summed accuracy).
//! * [`optimal`] — an exact branch-and-bound solver for the same problem,
//!   feasible only for small active-worker counts; powers the Table 5
//!   approximation-error experiment.
//! * [`testing`] — Step 3: performance-test assignments for workers the
//!   optimal scheme left idle, scored by estimate uncertainty × existing
//!   co-worker quality.
//! * [`qualification`] — Section 5: influence-maximizing qualification
//!   microtask selection (Algorithm 4, `1 − 1/e` greedy with CELF lazy
//!   evaluation) and the RandomQF baseline.

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod greedy;
pub mod optimal;
pub mod qualification;
pub mod testing;
pub mod top_workers;

pub use greedy::{greedy_assign, Assignment};
pub use optimal::optimal_assign;
pub use qualification::{select_qualification_influence, select_qualification_random};
pub use testing::performance_test_assignment;
pub use top_workers::{top_worker_set, top_worker_sets, TopWorkerSet};
