//! Exact optimal microtask assignment by branch and bound.
//!
//! Definition 4's problem — choose disjoint top-worker sets maximizing
//! summed accuracy — is NP-hard (Lemma 4), but for the small active-worker
//! counts of Appendix D.4 (3–7 workers) exhaustive search is feasible.
//! This solver mirrors the paper's "enumeration-based algorithm" used to
//! measure the greedy algorithm's approximation error (Table 5), with a
//! worker-bitmask representation and an optimistic-bound prune to keep
//! the search tractable a little beyond the paper's 7-worker limit.

use icrowd_core::worker::WorkerId;

use crate::greedy::Assignment;
use crate::top_workers::TopWorkerSet;

/// Maximum distinct workers the bitmask representation supports.
pub const MAX_WORKERS: usize = 64;

/// Exact optimal assignment (Definition 4) by depth-first branch and
/// bound over candidates.
///
/// Returns the scheme with the maximum summed accuracy; ties resolve to
/// the first one found in task order. Candidates with empty worker sets
/// are ignored.
///
/// # Panics
/// Panics if the candidates mention more than [`MAX_WORKERS`] distinct
/// workers.
pub fn optimal_assign(candidates: &[TopWorkerSet]) -> Vec<Assignment> {
    // Map distinct workers to bit positions.
    let mut worker_ids: Vec<WorkerId> = candidates
        .iter()
        .flat_map(|c| c.workers.iter().map(|&(w, _)| w))
        .collect();
    worker_ids.sort_unstable();
    worker_ids.dedup();
    assert!(
        worker_ids.len() <= MAX_WORKERS,
        "optimal_assign supports at most {MAX_WORKERS} distinct workers"
    );
    let bit = |w: WorkerId| -> u64 {
        let pos = worker_ids.binary_search(&w).expect("worker interned above");
        1u64 << pos
    };

    struct Cand<'a> {
        set: &'a TopWorkerSet,
        mask: u64,
        score: f64,
    }
    let mut cands: Vec<Cand<'_>> = candidates
        .iter()
        .filter(|c| !c.workers.is_empty())
        .map(|set| Cand {
            set,
            mask: set.workers.iter().fold(0u64, |m, &(w, _)| m | bit(w)),
            score: set.total_accuracy(),
        })
        .collect();
    // Process high scores first so good incumbents appear early (better
    // pruning).
    cands.sort_by(|a, b| b.score.total_cmp(&a.score));

    // Suffix sums of scores: an optimistic bound on what the remaining
    // candidates could still add (ignoring conflicts).
    let mut suffix = vec![0.0; cands.len() + 1];
    for i in (0..cands.len()).rev() {
        suffix[i] = suffix[i + 1] + cands[i].score;
    }

    struct Search<'a> {
        cands: &'a [Cand<'a>],
        suffix: &'a [f64],
        best_score: f64,
        best: Vec<usize>,
        chosen: Vec<usize>,
    }

    impl Search<'_> {
        fn run(&mut self, idx: usize, used: u64, score: f64) {
            if score > self.best_score {
                self.best_score = score;
                self.best = self.chosen.clone();
            }
            if idx == self.cands.len() || score + self.suffix[idx] <= self.best_score {
                return;
            }
            let c = &self.cands[idx];
            // Branch 1: take the candidate if disjoint.
            if used & c.mask == 0 {
                self.chosen.push(idx);
                self.run(idx + 1, used | c.mask, score + c.score);
                self.chosen.pop();
            }
            // Branch 2: skip it.
            self.run(idx + 1, used, score);
        }
    }

    let mut search = Search {
        cands: &cands,
        suffix: &suffix,
        best_score: 0.0,
        best: Vec::new(),
        chosen: Vec::new(),
    };
    search.run(0, 0, 0.0);

    let mut scheme: Vec<Assignment> = search
        .best
        .iter()
        .map(|&i| Assignment {
            task: cands[i].set.task,
            workers: cands[i].set.workers.clone(),
        })
        .collect();
    scheme.sort_by_key(|a| a.task);
    scheme
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_assign, scheme_objective};
    use crate::top_workers::top_worker_set;
    use icrowd_core::task::TaskId;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    fn w(i: u32) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn beats_greedy_on_a_known_trap() {
        // Greedy takes the single high-average candidate (avg 0.9, total
        // 0.9) and blocks two medium candidates whose combined total (1.6)
        // is higher.
        let candidates = vec![
            top_worker_set(t(0), vec![(w(0), 0.92), (w(1), 0.88)], 2), // avg .9, total 1.8
            top_worker_set(t(1), vec![(w(0), 0.85)], 1),
            top_worker_set(t(2), vec![(w(1), 0.85)], 1),
            top_worker_set(t(3), vec![(w(2), 0.85)], 1),
        ];
        let opt = optimal_assign(&candidates);
        let greedy = greedy_assign(&candidates);
        let (os, gs) = (scheme_objective(&opt), scheme_objective(&greedy));
        assert!(os >= gs, "optimal {os} must be >= greedy {gs}");
        // Optimal picks the three singletons: 0.85 * 3 = 2.55 > 1.8 + 0.85.
        // Wait: taking t0 (1.8) + t3 (0.85) = 2.65 beats 2.55; optimal is
        // t0 + t3.
        assert!((os - 2.65).abs() < 1e-12, "optimal objective is {os}");
    }

    #[test]
    fn greedy_never_exceeds_optimal_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..50 {
            let n_workers = rng.gen_range(3..8u32);
            let n_tasks = rng.gen_range(1..10u32);
            let candidates: Vec<_> = (0..n_tasks)
                .map(|i| {
                    let size = rng.gen_range(1..=3usize).min(n_workers as usize);
                    let mut ws: Vec<u32> = (0..n_workers).collect();
                    // Partial shuffle.
                    for j in 0..size {
                        let swap = rng.gen_range(j..ws.len());
                        ws.swap(j, swap);
                    }
                    let members: Vec<(WorkerId, f64)> = ws[..size]
                        .iter()
                        .map(|&wi| (w(wi), rng.gen_range(0.3..1.0)))
                        .collect();
                    top_worker_set(t(i), members, size)
                })
                .collect();
            let opt = scheme_objective(&optimal_assign(&candidates));
            let gre = scheme_objective(&greedy_assign(&candidates));
            assert!(
                gre <= opt + 1e-9,
                "greedy {gre} exceeded optimal {opt} on {candidates:?}"
            );
        }
    }

    #[test]
    fn single_candidate_and_empty_input() {
        assert!(optimal_assign(&[]).is_empty());
        let one = vec![top_worker_set(t(0), vec![(w(0), 0.7)], 1)];
        let scheme = optimal_assign(&one);
        assert_eq!(scheme.len(), 1);
        assert_eq!(scheme[0].task, t(0));
    }

    #[test]
    fn all_conflicting_candidates_pick_the_best_total() {
        let candidates = vec![
            top_worker_set(t(0), vec![(w(0), 0.6)], 1),
            top_worker_set(t(1), vec![(w(0), 0.9)], 1),
            top_worker_set(t(2), vec![(w(0), 0.7)], 1),
        ];
        let scheme = optimal_assign(&candidates);
        assert_eq!(scheme.len(), 1);
        assert_eq!(scheme[0].task, t(1));
    }
}
