//! Qualification microtask selection — Section 5 of the paper.
//!
//! The requester can only hand-label a small number `Q` of qualification
//! microtasks, so iCrowd chooses the subset with the maximum *influence*:
//! `INF(T^q)` counts the tasks receiving non-zero estimated accuracy when
//! the worker answers exactly the qualification set (Definition 5) — i.e.
//! the size of the union of the supports of the precomputed PPR vectors
//! `p_{t_i}`. Maximizing coverage is NP-hard (Lemma 5, reduction from
//! maximum coverage); the greedy algorithm (Algorithm 4) achieves the
//! classic `1 − 1/e` ratio. We implement it with CELF lazy evaluation:
//! marginal coverage is submodular, so stale heap entries only ever
//! overestimate and can be re-evaluated on demand instead of rescoring
//! every task each round.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use icrowd_core::task::TaskId;
use icrowd_graph::LinearityIndex;
use rand::Rng;

/// Greedy influence-maximizing qualification selection (`InfQF`,
/// Algorithm 4).
///
/// Returns exactly `min(q, |T|)` task ids in selection order. Once
/// coverage saturates (no remaining task adds influence), the remaining
/// slots are filled with unselected tasks in id order so the requester
/// still gets the `Q` qualification tasks she asked for (the warm-up
/// rejection rule needs enough of them to be meaningful).
pub fn select_qualification_influence(index: &LinearityIndex, q: usize) -> Vec<TaskId> {
    let n = index.num_tasks();
    let n32 = u32::try_from(n).expect("task count fits in u32");
    let mut covered = vec![false; n];
    let mut selected = Vec::with_capacity(q.min(n));

    // CELF heap: (optimistic marginal gain, round it was computed in, task).
    #[derive(PartialEq)]
    struct Entry {
        gain: usize,
        round: usize,
        task: u32,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.gain
                .cmp(&other.gain)
                .then(Reverse(self.task).cmp(&Reverse(other.task)))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let marginal = |task: u32, covered: &[bool]| -> usize {
        index
            .vector(TaskId(task))
            .support()
            .filter(|&i| !covered[i as usize])
            .count()
    };

    let mut heap: BinaryHeap<Entry> = (0..n32)
        .map(|task| Entry {
            gain: marginal(task, &covered),
            round: 0,
            task,
        })
        .collect();

    let target = q.min(n);
    'rounds: for round in 1..=target {
        let chosen = loop {
            let Some(top) = heap.pop() else {
                break 'rounds;
            };
            if top.gain == 0 {
                // Submodularity: nothing gains anything anymore.
                break 'rounds;
            }
            if top.round == round {
                break top;
            }
            // Stale optimistic bound: recompute and push back.
            let fresh = marginal(top.task, &covered);
            heap.push(Entry {
                gain: fresh,
                round,
                task: top.task,
            });
        };
        for i in index.vector(TaskId(chosen.task)).support() {
            covered[i as usize] = true;
        }
        selected.push(TaskId(chosen.task));
    }
    // Coverage saturated early: top up with unselected tasks in id order.
    if selected.len() < target {
        let chosen: std::collections::HashSet<u32> = selected.iter().map(|t| t.0).collect();
        for i in 0..n32 {
            if selected.len() == target {
                break;
            }
            if !chosen.contains(&i) {
                selected.push(TaskId(i));
            }
        }
    }
    selected
}

/// Random qualification selection (`RandomQF`): `q` distinct tasks drawn
/// uniformly, in draw order.
pub fn select_qualification_random<R: Rng>(num_tasks: usize, q: usize, rng: &mut R) -> Vec<TaskId> {
    let n32 = u32::try_from(num_tasks).expect("task count fits in u32");
    let mut ids: Vec<u32> = (0..n32).collect();
    let take = q.min(num_tasks);
    for i in 0..take {
        let j = rng.gen_range(i..ids.len());
        ids.swap(i, j);
    }
    ids[..take].iter().map(|&i| TaskId(i)).collect()
}

/// The influence `INF(T^q)` of a qualification set — exposed for
/// experiments comparing selection strategies (Figure 7).
pub fn influence(index: &LinearityIndex, selection: &[TaskId]) -> usize {
    index.influence(selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::config::PprConfig;
    use icrowd_graph::SimilarityGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    /// Three disjoint cliques of sizes 4, 3 and 2 plus one isolated task.
    fn clustered_index() -> LinearityIndex {
        let edges = vec![
            // Clique A: 0-3.
            (t(0), t(1), 0.9),
            (t(0), t(2), 0.9),
            (t(0), t(3), 0.9),
            (t(1), t(2), 0.9),
            (t(1), t(3), 0.9),
            (t(2), t(3), 0.9),
            // Clique B: 4-6.
            (t(4), t(5), 0.9),
            (t(4), t(6), 0.9),
            (t(5), t(6), 0.9),
            // Pair C: 7-8. Task 9 isolated.
            (t(7), t(8), 0.9),
        ];
        let g = SimilarityGraph::from_edges(10, &edges);
        LinearityIndex::build(&g, 1.0, &PprConfig::default())
    }

    #[test]
    fn greedy_picks_one_task_per_cluster_first() {
        let idx = clustered_index();
        let sel = select_qualification_influence(&idx, 3);
        assert_eq!(sel.len(), 3);
        // First pick covers the biggest clique (A: 4 tasks), second the
        // next (B: 3), third the pair (C: 2).
        assert!(
            sel[0].index() <= 3,
            "first pick from clique A, got {:?}",
            sel
        );
        assert!(
            (4..=6).contains(&sel[1].index()),
            "second from B: {:?}",
            sel
        );
        assert!((7..=8).contains(&sel[2].index()), "third from C: {:?}", sel);
        // Together they influence all but the isolated task... the isolated
        // task influences only itself, and is not selected yet.
        assert_eq!(influence(&idx, &sel), 9);
    }

    #[test]
    fn greedy_is_monotone_in_q() {
        let idx = clustered_index();
        let small = select_qualification_influence(&idx, 2);
        let large = select_qualification_influence(&idx, 4);
        assert_eq!(&large[..2], &small[..], "greedy choices are a prefix chain");
        assert!(influence(&idx, &large) >= influence(&idx, &small));
    }

    #[test]
    fn saturated_coverage_fills_to_q_deterministically() {
        let idx = clustered_index();
        // After 4 picks (one per cluster + the isolated task) everything
        // is covered; the remaining slots fill with unselected ids in
        // order so the requester still gets Q tasks.
        let sel = select_qualification_influence(&idx, 7);
        assert_eq!(sel.len(), 7);
        assert_eq!(influence(&idx, &sel[..4]), 10, "first 4 cover everything");
        let mut dedup = sel.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 7, "no duplicates in the fill");
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_instance() {
        let idx = clustered_index();
        let greedy_sel = select_qualification_influence(&idx, 2);
        let greedy_inf = influence(&idx, &greedy_sel);
        // Exhaustive best over all pairs.
        let mut best = 0;
        for a in 0..10u32 {
            for b in (a + 1)..10u32 {
                best = best.max(influence(&idx, &[t(a), t(b)]));
            }
        }
        // Coverage is a matroid-free max-coverage instance where greedy is
        // optimal when clusters are disjoint.
        assert_eq!(greedy_inf, best);
    }

    #[test]
    fn random_selection_is_distinct_and_seeded() {
        let mut rng = StdRng::seed_from_u64(7);
        let sel = select_qualification_random(10, 5, &mut rng);
        assert_eq!(sel.len(), 5);
        let mut dedup = sel.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 5, "selections must be distinct");
        // Deterministic given the seed.
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(select_qualification_random(10, 5, &mut rng2), sel);
        // q larger than n truncates.
        let mut rng3 = StdRng::seed_from_u64(7);
        assert_eq!(select_qualification_random(3, 10, &mut rng3).len(), 3);
    }
}
