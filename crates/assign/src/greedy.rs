//! The greedy assignment algorithm — Algorithm 3 of the paper.
//!
//! Optimal microtask assignment (Definition 4: pick disjoint top-worker
//! sets maximizing summed accuracy) is NP-hard by reduction from k-set
//! packing (Lemma 4, Appendix B). Algorithm 3 approximates it greedily:
//! repeatedly commit the candidate with the highest *average* worker
//! accuracy, then discard every candidate sharing a worker with it.
//!
//! The implementation sorts candidates by score once and walks the sorted
//! order with a used-worker set — semantically identical to the paper's
//! repeated-maximum loop (scores never change between iterations) at
//! `O(|T| log |T| + Σ|Ŵ(t)|)` instead of `O(|T|^2)`.

use std::collections::HashSet;

use icrowd_core::task::TaskId;
use icrowd_core::worker::WorkerId;

use crate::top_workers::TopWorkerSet;

/// One committed assignment: a task and the workers it goes to.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The microtask.
    pub task: TaskId,
    /// Workers receiving the task, highest estimated accuracy first.
    pub workers: Vec<(WorkerId, f64)>,
}

impl Assignment {
    /// Summed estimated accuracy (the Definition-4 objective term).
    pub fn total_accuracy(&self) -> f64 {
        self.workers.iter().map(|&(_, p)| p).sum()
    }

    /// The worker ids in rank order.
    pub fn worker_ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.workers.iter().map(|&(w, _)| w)
    }
}

/// Algorithm 3: greedy disjoint assignment.
///
/// Candidates with empty worker sets are ignored. Ties on average
/// accuracy break toward the smaller task id, keeping runs deterministic.
///
/// ```
/// use icrowd_assign::{greedy_assign, top_worker_set};
/// use icrowd_core::{TaskId, WorkerId};
///
/// let sets = vec![
///     top_worker_set(TaskId(0), vec![(WorkerId(0), 0.9), (WorkerId(1), 0.8)], 2),
///     top_worker_set(TaskId(1), vec![(WorkerId(1), 0.95)], 1), // conflicts on w1
///     top_worker_set(TaskId(2), vec![(WorkerId(2), 0.6)], 1),
/// ];
/// let scheme = greedy_assign(&sets);
/// // t1 wins first (avg 0.95), knocking out t0; t2 is disjoint.
/// let tasks: Vec<_> = scheme.iter().map(|a| a.task).collect();
/// assert_eq!(tasks, vec![TaskId(1), TaskId(2)]);
/// ```
pub fn greedy_assign(candidates: &[TopWorkerSet]) -> Vec<Assignment> {
    let mut order: Vec<&TopWorkerSet> = candidates
        .iter()
        .filter(|c| !c.workers.is_empty())
        .collect();
    order.sort_by(|a, b| {
        b.average_accuracy()
            .total_cmp(&a.average_accuracy())
            .then(a.task.cmp(&b.task))
    });

    let mut used: HashSet<WorkerId> = HashSet::new();
    let mut out = Vec::new();
    for cand in order {
        if cand.workers.iter().any(|(w, _)| used.contains(w)) {
            continue;
        }
        used.extend(cand.workers.iter().map(|&(w, _)| w));
        out.push(Assignment {
            task: cand.task,
            workers: cand.workers.clone(),
        });
    }
    out
}

/// The total objective value of an assignment scheme (Definition 4).
pub fn scheme_objective(scheme: &[Assignment]) -> f64 {
    scheme.iter().map(Assignment::total_accuracy).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::top_workers::top_worker_set;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    fn w(i: u32) -> WorkerId {
        WorkerId(i)
    }

    /// The paper's Table 3 worked example: greedy picks t11 first
    /// (highest average 0.825), discarding t4 and t10, then picks t9.
    #[test]
    fn reproduces_table3_walkthrough() {
        let candidates = vec![
            top_worker_set(t(3), vec![(w(4), 0.75), (w(3), 0.7), (w(0), 0.6)], 3), // t4
            top_worker_set(t(10), vec![(w(4), 0.85), (w(2), 0.8)], 2),             // t11
            top_worker_set(t(8), vec![(w(3), 0.85), (w(1), 0.75), (w(0), 0.7)], 3), // t9
            top_worker_set(t(9), vec![(w(2), 0.7), (w(0), 0.6)], 2),               // t10
        ];
        let scheme = greedy_assign(&candidates);
        assert_eq!(scheme.len(), 2);
        assert_eq!(scheme[0].task, t(10), "t11 wins the first iteration");
        assert_eq!(scheme[0].worker_ids().collect::<Vec<_>>(), vec![w(4), w(2)]);
        assert_eq!(scheme[1].task, t(8), "t9 wins the second iteration");
        // Objective: (0.85 + 0.8) + (0.85 + 0.75 + 0.7).
        assert!((scheme_objective(&scheme) - 3.95).abs() < 1e-12);
    }

    #[test]
    fn worker_disjointness_always_holds() {
        let candidates = vec![
            top_worker_set(t(0), vec![(w(0), 0.9), (w(1), 0.9)], 2),
            top_worker_set(t(1), vec![(w(1), 0.95), (w(2), 0.9)], 2),
            top_worker_set(t(2), vec![(w(3), 0.5)], 1),
        ];
        let scheme = greedy_assign(&candidates);
        let mut seen = HashSet::new();
        for a in &scheme {
            for wid in a.worker_ids() {
                assert!(seen.insert(wid), "worker {wid} assigned twice");
            }
        }
        // t1 has the highest average (0.925) → wins; t0 conflicts on w1.
        assert!(scheme.iter().any(|a| a.task == t(1)));
        assert!(!scheme.iter().any(|a| a.task == t(0)));
        assert!(scheme.iter().any(|a| a.task == t(2)));
    }

    #[test]
    fn empty_candidates_and_empty_sets() {
        assert!(greedy_assign(&[]).is_empty());
        let only_empty = vec![top_worker_set(t(0), vec![], 3)];
        assert!(greedy_assign(&only_empty).is_empty());
    }

    #[test]
    fn ties_break_deterministically_by_task_id() {
        let candidates = vec![
            top_worker_set(t(5), vec![(w(0), 0.8)], 1),
            top_worker_set(t(2), vec![(w(0), 0.8)], 1),
        ];
        let scheme = greedy_assign(&candidates);
        assert_eq!(scheme.len(), 1);
        assert_eq!(scheme[0].task, t(2), "lower task id wins ties");
    }

    #[test]
    fn average_not_total_drives_selection() {
        // A 1-worker set with avg 0.9 must beat a 3-worker set with total
        // 2.4 (avg 0.8) when they conflict.
        let candidates = vec![
            top_worker_set(t(0), vec![(w(0), 0.9)], 1),
            top_worker_set(t(1), vec![(w(0), 0.8), (w(1), 0.8), (w(2), 0.8)], 3),
        ];
        let scheme = greedy_assign(&candidates);
        assert_eq!(scheme[0].task, t(0));
        // The other candidate conflicts on w0 and is dropped entirely.
        assert_eq!(scheme.len(), 1);
    }
}
