//! Top worker sets — Definition 3 of the paper.
//!
//! For an uncompleted microtask `t` with assigned workers `W^d(t)` (those
//! who completed it or are currently working on it), the *top worker set*
//! is the `k' = k − |W^d(t)|` eligible active workers with the highest
//! estimated accuracies `p_t^w`.

use icrowd_core::task::TaskId;
use icrowd_core::worker::WorkerId;
use icrowd_estimate::AccuracyEstimator;

/// The top worker set of one microtask.
#[derive(Debug, Clone, PartialEq)]
pub struct TopWorkerSet {
    /// The microtask.
    pub task: TaskId,
    /// Top workers with their estimated accuracies, highest first.
    /// Contains at most `k'` entries — fewer when not enough active
    /// workers are eligible.
    pub workers: Vec<(WorkerId, f64)>,
    /// The remaining capacity `k'` (how many workers the task still
    /// needs).
    pub remaining: usize,
}

impl TopWorkerSet {
    /// Mean estimated accuracy of the set — Algorithm 3's selection
    /// score. Zero for an empty set.
    pub fn average_accuracy(&self) -> f64 {
        if self.workers.is_empty() {
            0.0
        } else {
            self.workers.iter().map(|&(_, p)| p).sum::<f64>() / self.workers.len() as f64
        }
    }

    /// Summed estimated accuracy — the objective contribution in
    /// Definition 4.
    pub fn total_accuracy(&self) -> f64 {
        self.workers.iter().map(|&(_, p)| p).sum()
    }

    /// Whether the set holds enough workers to globally complete the
    /// task in one round (`|workers| == remaining`).
    pub fn is_full(&self) -> bool {
        !self.workers.is_empty() && self.workers.len() == self.remaining
    }

    /// The worker ids, highest accuracy first.
    pub fn worker_ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.workers.iter().map(|&(w, _)| w)
    }
}

/// Computes the top worker set of one task.
///
/// `eligible` are the active workers the task can still be assigned to
/// (`W^u(t)`, i.e. active workers minus `W^d(t)`), paired with their
/// estimated accuracies on this task. `remaining` is `k'`.
///
/// Workers are ranked by accuracy descending with worker-id ascending as
/// the deterministic tie-break.
pub fn top_worker_set(
    task: TaskId,
    eligible: impl IntoIterator<Item = (WorkerId, f64)>,
    remaining: usize,
) -> TopWorkerSet {
    let mut workers: Vec<(WorkerId, f64)> = eligible.into_iter().collect();
    workers.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    workers.truncate(remaining);
    TopWorkerSet {
        task,
        workers,
        remaining,
    }
}

/// Computes top worker sets for every uncompleted task (Algorithm 2,
/// Step 1).
///
/// * `uncompleted` — the tasks in `T − T^d` that still have capacity.
/// * `active` — the currently active workers.
/// * `assigned` — `W^d(t)`: returns the workers already assigned to a
///   task (completed it or holding it in flight).
/// * `k` — the assignment size.
///
/// Tasks whose remaining capacity is zero, or with no eligible worker,
/// yield sets with empty `workers` and are filtered out.
pub fn top_worker_sets(
    estimator: &mut AccuracyEstimator,
    uncompleted: &[TaskId],
    active: &[WorkerId],
    mut assigned: impl FnMut(TaskId) -> Vec<WorkerId>,
    k: usize,
) -> Vec<TopWorkerSet> {
    // Pre-warm per-worker accuracy caches once (each call borrows &mut).
    for &w in active {
        estimator.accuracies(w);
    }
    let mut out = Vec::with_capacity(uncompleted.len());
    for &t in uncompleted {
        let done = assigned(t);
        let remaining = k.saturating_sub(done.len());
        if remaining == 0 {
            continue;
        }
        let eligible = active
            .iter()
            .filter(|w| !done.contains(w))
            .map(|&w| (w, estimator.accuracy_cached(w, t)));
        let set = top_worker_set(t, eligible, remaining);
        if !set.workers.is_empty() {
            out.push(set);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::answer::Answer;
    use icrowd_core::config::ICrowdConfig;
    use icrowd_core::task::TaskId;
    use icrowd_estimate::EstimationMode;
    use icrowd_graph::SimilarityGraph;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    fn w(i: u32) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn ranks_by_accuracy_then_id() {
        let set = top_worker_set(
            t(0),
            vec![(w(3), 0.7), (w(1), 0.9), (w(2), 0.7), (w(0), 0.2)],
            3,
        );
        assert_eq!(
            set.workers,
            vec![(w(1), 0.9), (w(2), 0.7), (w(3), 0.7)],
            "ties break toward the smaller worker id"
        );
        assert!((set.average_accuracy() - (0.9 + 0.7 + 0.7) / 3.0).abs() < 1e-12);
        assert!((set.total_accuracy() - 2.3).abs() < 1e-12);
        assert!(set.is_full());
    }

    #[test]
    fn respects_remaining_capacity() {
        // Paper's Table 3: t11 already has one assignee, so its top worker
        // set holds only k' = 2 workers.
        let set = top_worker_set(t(10), vec![(w(4), 0.85), (w(2), 0.8), (w(0), 0.6)], 2);
        assert_eq!(set.workers.len(), 2);
        assert_eq!(set.remaining, 2);
        assert_eq!(set.workers[0], (w(4), 0.85));
    }

    #[test]
    fn underfull_set_is_not_full() {
        let set = top_worker_set(t(0), vec![(w(0), 0.9)], 3);
        assert!(!set.is_full());
        assert_eq!(set.average_accuracy(), 0.9);
        let empty = top_worker_set(t(0), vec![], 3);
        assert_eq!(empty.average_accuracy(), 0.0);
        assert!(!empty.is_full());
    }

    #[test]
    fn sets_computed_per_task_with_exclusions() {
        let graph = SimilarityGraph::from_edges(3, &[(t(0), t(1), 0.9), (t(1), t(2), 0.9)]);
        let mut est =
            AccuracyEstimator::new(graph, ICrowdConfig::default(), EstimationMode::Centered);
        // Worker 0 is visibly better than worker 1 near task 0.
        est.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
        est.record_qualification(w(1), t(0), Answer::NO, Answer::YES);

        let active = vec![w(0), w(1)];
        let sets = top_worker_sets(
            &mut est,
            &[t(1), t(2)],
            &active,
            |task| {
                if task == t(2) {
                    vec![w(0)] // w0 already assigned to t2
                } else {
                    vec![]
                }
            },
            3,
        );
        assert_eq!(sets.len(), 2);
        let s1 = sets.iter().find(|s| s.task == t(1)).unwrap();
        assert_eq!(s1.workers.len(), 2);
        assert_eq!(s1.workers[0].0, w(0), "better worker ranks first");
        let s2 = sets.iter().find(|s| s.task == t(2)).unwrap();
        assert_eq!(s2.remaining, 2, "one of k=3 slots already used");
        assert!(
            s2.worker_ids().all(|x| x != w(0)),
            "already-assigned workers are excluded"
        );
    }

    #[test]
    fn saturated_tasks_are_dropped() {
        let graph = SimilarityGraph::from_edges(1, &[]);
        let mut est =
            AccuracyEstimator::new(graph, ICrowdConfig::default(), EstimationMode::Centered);
        let sets = top_worker_sets(
            &mut est,
            &[t(0)],
            &[w(0)],
            |_| vec![w(1), w(2), w(3)], // already has k = 3 assignees
            3,
        );
        assert!(sets.is_empty());
    }
}
