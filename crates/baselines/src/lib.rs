//! # icrowd-baselines
//!
//! The baseline crowdsourcing approaches iCrowd is evaluated against
//! (Section 6.1 of the paper), plus the alternative assignment strategies
//! of Section 6.3.2:
//!
//! * **RandomMV** — random assignment + majority voting
//!   ([`aggregate::MajorityAggregator`] + [`pickers::random_pick`]).
//! * **RandomEM** — random assignment + Dawid–Skene
//!   expectation-maximization ([`dawid_skene::DawidSkene`]).
//! * **AvgAccPV** — gold-injected average-accuracy estimation
//!   ([`avgacc::GoldAccuracyTracker`]) + the CDAS probabilistic
//!   verification aggregation ([`avgacc::probabilistic_verification`]).
//! * **QF-Only** / **BestEffort** — strategy building blocks in
//!   [`pickers`]; the campaign runner in `icrowd-sim` wires them to the
//!   shared estimator.
//!
//! Everything here is *pure*: aggregators map vote sets to answers,
//! pickers map a worker's view of the task pool to a choice. Platform
//! wiring lives upstream.

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod aggregate;
pub mod avgacc;
pub mod dawid_skene;
pub mod pickers;

pub use aggregate::{Aggregator, MajorityAggregator, TaskVotes};
pub use avgacc::{probabilistic_verification, GoldAccuracyTracker, PvAggregator};
pub use dawid_skene::{DawidSkene, DawidSkeneFit};
pub use pickers::{best_effort_pick, random_pick};
