//! Task-picking building blocks for the baseline assignment strategies.
//!
//! * [`random_pick`] — the random assignment of RandomMV / RandomEM:
//!   uniformly choose an eligible task.
//! * [`best_effort_pick`] — the BestEffort strategy of Section 6.3.2:
//!   give the requesting worker the eligible task with *her* highest
//!   estimated accuracy, ignoring whether better workers exist for it
//!   (the paper shows this myopia is what holds BestEffort back).
//!
//! The QF-Only strategy needs no picker of its own: it is iCrowd's
//! adaptive assigner run against an estimator frozen after warm-up; the
//! campaign runner wires that by simply not feeding consensus updates to
//! the estimator.

use icrowd_core::task::TaskId;
use rand::Rng;

/// Uniformly picks one of the eligible tasks. Returns `None` when
/// `eligible` is empty.
pub fn random_pick<R: Rng>(eligible: &[TaskId], rng: &mut R) -> Option<TaskId> {
    if eligible.is_empty() {
        None
    } else {
        Some(eligible[rng.gen_range(0..eligible.len())])
    }
}

/// Picks the eligible task on which the requesting worker's estimated
/// accuracy is highest (ties toward the smaller task id). `accuracy`
/// maps a task to the worker's estimate.
pub fn best_effort_pick(
    eligible: &[TaskId],
    mut accuracy: impl FnMut(TaskId) -> f64,
) -> Option<TaskId> {
    eligible
        .iter()
        .map(|&t| (t, accuracy(t)))
        .max_by(|(ta, a), (tb, b)| a.total_cmp(b).then(tb.cmp(ta)))
        .map(|(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn random_pick_is_uniformish_and_seeded() {
        let eligible = vec![t(0), t(1), t(2), t(3)];
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[random_pick(&eligible, &mut rng).unwrap().index()] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed counts {counts:?}");
        }
        // Determinism.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            random_pick(&eligible, &mut a),
            random_pick(&eligible, &mut b)
        );
    }

    #[test]
    fn random_pick_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(random_pick(&[], &mut rng), None);
    }

    #[test]
    fn best_effort_takes_the_workers_best_task() {
        let eligible = vec![t(0), t(1), t(2)];
        let accs = [0.4, 0.9, 0.6];
        let pick = best_effort_pick(&eligible, |task| accs[task.index()]);
        assert_eq!(pick, Some(t(1)));
    }

    #[test]
    fn best_effort_ties_break_to_smaller_id() {
        let eligible = vec![t(2), t(0), t(1)];
        let pick = best_effort_pick(&eligible, |_| 0.7);
        assert_eq!(pick, Some(t(0)));
        assert_eq!(best_effort_pick(&[], |_| 0.7), None);
    }
}
