//! AvgAccPV — gold-injected average accuracy + probabilistic
//! verification (the CDAS approach of Liu et al., PVLDB 2012, which the
//! paper uses as its third baseline).
//!
//! * [`GoldAccuracyTracker`] estimates one *average* accuracy per worker
//!   from her answers to injected gold (ground-truth) tasks — exactly the
//!   quantity the paper argues is too coarse for domain-diverse workers.
//! * [`probabilistic_verification`] aggregates a vote set under the
//!   naive-Bayes model: `P(answer = a) ∝ Π_{w voted a} p_w · Π_{w voted
//!   a' ≠ a} (1 − p_w) / (k − 1)`, choosing the answer with the highest
//!   posterior and reporting its confidence.

use icrowd_core::answer::{Answer, Vote};
use icrowd_core::worker::WorkerId;

use crate::aggregate::{Aggregator, TaskVotes};

/// Tracks per-worker average accuracy from gold-task answers, with a
/// Laplace prior so unseen workers start at 0.5.
#[derive(Debug, Clone, Default)]
pub struct GoldAccuracyTracker {
    /// `(correct, total)` per worker index.
    counts: Vec<(u32, u32)>,
}

impl GoldAccuracyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a gold-task answer.
    pub fn record(&mut self, worker: WorkerId, answer: Answer, ground_truth: Answer) {
        if self.counts.len() <= worker.index() {
            self.counts.resize(worker.index() + 1, (0, 0));
        }
        let (c, t) = &mut self.counts[worker.index()];
        *t += 1;
        if answer == ground_truth {
            *c += 1;
        }
    }

    /// The Laplace-smoothed average accuracy `(correct + 1) / (total + 2)`.
    pub fn accuracy(&self, worker: WorkerId) -> f64 {
        match self.counts.get(worker.index()) {
            Some(&(c, t)) => f64::from(c + 1) / f64::from(t + 2),
            None => 0.5,
        }
    }

    /// Raw `(correct, total)` counts.
    pub fn counts(&self, worker: WorkerId) -> (u32, u32) {
        self.counts.get(worker.index()).copied().unwrap_or((0, 0))
    }

    /// Whether the worker falls below `threshold` after at least
    /// `min_answers` gold answers (CDAS-style bad-worker elimination).
    pub fn is_eliminated(&self, worker: WorkerId, threshold: f64, min_answers: u32) -> bool {
        let (c, t) = self.counts(worker);
        t >= min_answers && (f64::from(c) / f64::from(t)) < threshold
    }
}

/// Probabilistic-verification aggregation of one vote set.
///
/// `accuracy` supplies each voter's (average) accuracy. Returns the MAP
/// answer and its posterior probability; `None` for an empty vote set.
/// Accuracies are clamped to `[0.01, 0.99]` to keep posteriors finite.
/// (Thin wrapper over [`icrowd_core::probability::vote_posterior`], the
/// canonical naive-Bayes vote model.)
pub fn probabilistic_verification(
    votes: &[Vote],
    num_choices: u8,
    accuracy: impl FnMut(WorkerId) -> f64,
) -> Option<(Answer, f64)> {
    icrowd_core::probability::vote_posterior(votes, num_choices, accuracy)
}

/// The AvgAccPV aggregator: probabilistic verification weighted by
/// gold-estimated average accuracies.
#[derive(Debug, Clone)]
pub struct PvAggregator {
    tracker: GoldAccuracyTracker,
}

impl PvAggregator {
    /// Wraps a populated gold-accuracy tracker.
    pub fn new(tracker: GoldAccuracyTracker) -> Self {
        Self { tracker }
    }

    /// The underlying tracker.
    pub fn tracker(&self) -> &GoldAccuracyTracker {
        &self.tracker
    }
}

impl Aggregator for PvAggregator {
    fn name(&self) -> &str {
        "AvgAccPV"
    }

    fn aggregate(
        &self,
        num_tasks: usize,
        num_choices: u8,
        votes: &[TaskVotes],
    ) -> Vec<Option<Answer>> {
        let mut out = vec![None; num_tasks];
        for tv in votes {
            out[tv.task.index()] =
                probabilistic_verification(&tv.votes, num_choices, |w| self.tracker.accuracy(w))
                    .map(|(a, _)| a);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::TaskId;

    fn vote(w: u32, a: u8) -> Vote {
        Vote {
            worker: WorkerId(w),
            answer: Answer(a),
        }
    }

    #[test]
    fn tracker_smooths_and_records() {
        let mut tr = GoldAccuracyTracker::new();
        assert_eq!(tr.accuracy(WorkerId(0)), 0.5, "prior for unseen workers");
        tr.record(WorkerId(0), Answer::YES, Answer::YES);
        tr.record(WorkerId(0), Answer::YES, Answer::NO);
        tr.record(WorkerId(0), Answer::NO, Answer::NO);
        // 2 correct of 3 → (2+1)/(3+2).
        assert!((tr.accuracy(WorkerId(0)) - 0.6).abs() < 1e-12);
        assert_eq!(tr.counts(WorkerId(0)), (2, 3));
    }

    #[test]
    fn elimination_threshold() {
        let mut tr = GoldAccuracyTracker::new();
        for _ in 0..5 {
            tr.record(WorkerId(0), Answer::YES, Answer::NO);
        }
        assert!(tr.is_eliminated(WorkerId(0), 0.6, 5));
        assert!(!tr.is_eliminated(WorkerId(0), 0.6, 6), "needs min answers");
        assert!(
            !tr.is_eliminated(WorkerId(1), 0.6, 1),
            "unseen workers stay"
        );
    }

    #[test]
    fn reliable_minority_overrides_majority() {
        // One 95% worker votes YES; two 40% workers vote NO.
        let votes = vec![vote(0, 1), vote(1, 0), vote(2, 0)];
        let acc = |w: WorkerId| match w.0 {
            0 => 0.95,
            _ => 0.40,
        };
        let (ans, conf) = probabilistic_verification(&votes, 2, acc).unwrap();
        assert_eq!(ans, Answer::YES);
        assert!(conf > 0.5);
    }

    #[test]
    fn symmetric_votes_at_even_accuracy_are_a_coin_flip() {
        let votes = vec![vote(0, 1), vote(1, 0)];
        let (_, conf) = probabilistic_verification(&votes, 2, |_| 0.7).unwrap();
        assert!((conf - 0.5).abs() < 1e-9);
    }

    #[test]
    fn confidence_grows_with_agreement() {
        let two = vec![vote(0, 1), vote(1, 1)];
        let three = vec![vote(0, 1), vote(1, 1), vote(2, 1)];
        let (_, c2) = probabilistic_verification(&two, 2, |_| 0.8).unwrap();
        let (_, c3) = probabilistic_verification(&three, 2, |_| 0.8).unwrap();
        assert!(c3 > c2);
    }

    #[test]
    fn multi_choice_spreads_error_mass() {
        // One voter at accuracy 0.7 over 3 choices: the two wrong answers
        // share the remaining 0.3.
        let votes = vec![vote(0, 2)];
        let (ans, conf) = probabilistic_verification(&votes, 3, |_| 0.7).unwrap();
        assert_eq!(ans, Answer(2));
        assert!((conf - 0.7).abs() < 1e-9);
    }

    #[test]
    fn aggregator_trait_wiring() {
        let mut tr = GoldAccuracyTracker::new();
        for _ in 0..9 {
            tr.record(WorkerId(0), Answer::YES, Answer::YES); // expert
            tr.record(WorkerId(1), Answer::YES, Answer::NO); // spammer
            tr.record(WorkerId(2), Answer::YES, Answer::NO); // spammer
        }
        let agg = PvAggregator::new(tr);
        let votes = vec![TaskVotes {
            task: TaskId(0),
            votes: vec![vote(0, 1), vote(1, 0), vote(2, 0)],
        }];
        let out = agg.aggregate(1, 2, &votes);
        assert_eq!(
            out[0],
            Some(Answer::YES),
            "the expert outvotes two spammers"
        );
        assert_eq!(agg.name(), "AvgAccPV");
    }

    #[test]
    fn empty_votes_yield_none() {
        assert!(probabilistic_verification(&[], 2, |_| 0.5).is_none());
    }
}
