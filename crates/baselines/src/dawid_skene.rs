//! The Dawid–Skene EM aggregator — the paper's RandomEM baseline.
//!
//! Dawid & Skene (1979) model each worker `w` with a confusion matrix
//! `π^w[c][a]` — the probability she answers `a` when the true class is
//! `c` — and each task with a latent true class. EM alternates:
//!
//! * **E-step** — task posteriors
//!   `T_i(c) ∝ ρ_c · Π_{(w,a) ∈ votes(i)} π^w[c][a]`;
//! * **M-step** — confusion matrices and class priors re-estimated from
//!   the posteriors (with additive smoothing so unseen cells stay
//!   positive).
//!
//! Iteration stops when the observed-data log-likelihood improves by less
//! than the tolerance. Posteriors initialize from per-task vote
//! fractions, the standard majority-voting warm start.

use icrowd_core::answer::Answer;
use icrowd_core::worker::WorkerId;

use crate::aggregate::{Aggregator, TaskVotes};

/// Configuration for the Dawid–Skene EM aggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DawidSkene {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Stop when the log-likelihood improves less than this.
    pub tolerance: f64,
    /// Additive (Laplace) smoothing for confusion-matrix cells.
    pub smoothing: f64,
}

impl Default for DawidSkene {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            tolerance: 1e-7,
            smoothing: 0.01,
        }
    }
}

/// A fitted Dawid–Skene model.
#[derive(Debug, Clone)]
pub struct DawidSkeneFit {
    num_choices: usize,
    /// `posterior[i][c]`: probability task `i` has true class `c`
    /// (empty inner vec for unvoted tasks).
    posterior: Vec<Vec<f64>>,
    /// `confusion[w][c][a]` flattened to `w * k * k + c * k + a`.
    confusion: Vec<f64>,
    num_workers: usize,
    /// Class priors `ρ`.
    priors: Vec<f64>,
    /// Final observed-data log-likelihood.
    log_likelihood: f64,
    iterations: usize,
}

impl DawidSkeneFit {
    /// Posterior distribution of task `i` (empty slice if unvoted).
    pub fn posterior(&self, task: usize) -> &[f64] {
        &self.posterior[task]
    }

    /// MAP answer for task `i` (`None` if unvoted).
    pub fn map_answer(&self, task: usize) -> Option<Answer> {
        let p = &self.posterior[task];
        if p.is_empty() {
            return None;
        }
        let (best, _) = p
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ib.cmp(ia)))?;
        Some(Answer(best as u8))
    }

    /// The confusion matrix cell `π^w[true][answered]`.
    pub fn confusion(&self, worker: WorkerId, truth: u8, answered: u8) -> f64 {
        let k = self.num_choices;
        self.confusion[worker.index() * k * k + truth as usize * k + answered as usize]
    }

    /// The worker's estimated accuracy: prior-weighted diagonal of her
    /// confusion matrix.
    pub fn worker_accuracy(&self, worker: WorkerId) -> f64 {
        (0..self.num_choices)
            .map(|c| self.priors[c] * self.confusion(worker, c as u8, c as u8))
            .sum()
    }

    /// Number of workers the model saw.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The class priors `ρ`.
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// The final log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// EM iterations actually run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl DawidSkene {
    /// Runs EM on the given votes.
    pub fn fit(&self, num_tasks: usize, num_choices: u8, votes: &[TaskVotes]) -> DawidSkeneFit {
        let k = num_choices as usize;
        let num_workers = votes
            .iter()
            .flat_map(|tv| tv.votes.iter().map(|v| v.worker.index() + 1))
            .max()
            .unwrap_or(0);

        // Initialize posteriors from vote fractions (majority warm start).
        let mut posterior: Vec<Vec<f64>> = vec![Vec::new(); num_tasks];
        for tv in votes {
            if tv.votes.is_empty() {
                continue;
            }
            let mut p = vec![0.0; k];
            for v in &tv.votes {
                p[v.answer.index()] += 1.0;
            }
            let total: f64 = p.iter().sum();
            for x in &mut p {
                *x /= total;
            }
            posterior[tv.task.index()] = p;
        }

        let mut confusion = vec![0.0; num_workers * k * k];
        let mut priors = vec![1.0 / k as f64; k];
        let mut last_ll = f64::NEG_INFINITY;
        let mut iterations = 0;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            // M-step: confusion matrices and priors from posteriors.
            confusion.fill(self.smoothing);
            let mut prior_counts = vec![self.smoothing; k];
            for tv in votes {
                let p = &posterior[tv.task.index()];
                if p.is_empty() {
                    continue;
                }
                for v in &tv.votes {
                    let w = v.worker.index();
                    for (c, &pc) in p.iter().enumerate() {
                        confusion[w * k * k + c * k + v.answer.index()] += pc;
                    }
                }
                for (c, &pc) in p.iter().enumerate() {
                    prior_counts[c] += pc;
                }
            }
            // Normalize confusion rows and priors.
            for w in 0..num_workers {
                for c in 0..k {
                    let row = &mut confusion[w * k * k + c * k..w * k * k + (c + 1) * k];
                    let s: f64 = row.iter().sum();
                    for x in row {
                        *x /= s;
                    }
                }
            }
            let ps: f64 = prior_counts.iter().sum();
            for (c, pc) in prior_counts.iter().enumerate() {
                priors[c] = pc / ps;
            }

            // E-step: recompute posteriors; accumulate log-likelihood.
            let mut ll = 0.0;
            for tv in votes {
                if tv.votes.is_empty() {
                    continue;
                }
                let mut logp: Vec<f64> = priors.iter().map(|&r| r.ln()).collect();
                for v in &tv.votes {
                    let w = v.worker.index();
                    for (c, lp) in logp.iter_mut().enumerate() {
                        *lp += confusion[w * k * k + c * k + v.answer.index()].ln();
                    }
                }
                // Log-sum-exp normalization.
                let m = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let z: f64 = logp.iter().map(|&lp| (lp - m).exp()).sum();
                ll += m + z.ln();
                let p = &mut posterior[tv.task.index()];
                p.clear();
                p.extend(logp.iter().map(|&lp| (lp - m).exp() / z));
            }

            if (ll - last_ll).abs() < self.tolerance {
                last_ll = ll;
                break;
            }
            last_ll = ll;
        }

        DawidSkeneFit {
            num_choices: k,
            posterior,
            confusion,
            num_workers,
            priors,
            log_likelihood: last_ll,
            iterations,
        }
    }
}

impl Aggregator for DawidSkene {
    fn name(&self) -> &str {
        "DawidSkeneEM"
    }

    fn aggregate(
        &self,
        num_tasks: usize,
        num_choices: u8,
        votes: &[TaskVotes],
    ) -> Vec<Option<Answer>> {
        let fit = self.fit(num_tasks, num_choices, votes);
        (0..num_tasks).map(|i| fit.map_answer(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::answer::Vote;
    use icrowd_core::task::TaskId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vote(w: u32, a: u8) -> Vote {
        Vote {
            worker: WorkerId(w),
            answer: Answer(a),
        }
    }

    /// Synthesizes votes: workers 0-2 are 90% accurate, worker 3 answers
    /// adversarially (flips the truth), over 60 binary tasks.
    fn synthetic_votes(seed: u64) -> (Vec<Answer>, Vec<TaskVotes>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truths: Vec<Answer> = (0..60).map(|_| Answer(rng.gen_range(0..2u8))).collect();
        let votes = truths
            .iter()
            .enumerate()
            .map(|(i, &truth)| {
                let mut vs = Vec::new();
                for w in 0..3u32 {
                    let correct = rng.gen_bool(0.9);
                    let a = if correct { truth } else { truth.negated() };
                    vs.push(vote(w, a.0));
                }
                // The adversary is wrong 85% of the time.
                let a = if rng.gen_bool(0.15) {
                    truth
                } else {
                    truth.negated()
                };
                vs.push(vote(3, a.0));
                TaskVotes {
                    task: TaskId(i as u32),
                    votes: vs,
                }
            })
            .collect();
        (truths, votes)
    }

    #[test]
    fn recovers_truth_better_than_chance_and_identifies_the_adversary() {
        let (truths, votes) = synthetic_votes(11);
        let ds = DawidSkene::default();
        let fit = ds.fit(60, 2, &votes);
        let correct = truths
            .iter()
            .enumerate()
            .filter(|&(i, &t)| fit.map_answer(i) == Some(t))
            .count();
        assert!(correct >= 54, "EM should recover >= 90%: got {correct}/60");
        // Honest workers get high accuracy, the adversary low.
        for w in 0..3u32 {
            assert!(
                fit.worker_accuracy(WorkerId(w)) > 0.75,
                "honest worker {w} scored {}",
                fit.worker_accuracy(WorkerId(w))
            );
        }
        assert!(
            fit.worker_accuracy(WorkerId(3)) < 0.4,
            "adversary scored {}",
            fit.worker_accuracy(WorkerId(3))
        );
    }

    #[test]
    fn em_beats_majority_under_heterogeneous_reliability() {
        // One 95% expert among four barely-better-than-chance workers.
        // Majority voting weighs them equally; EM learns the confusion
        // matrices and leans on the expert. (Note the setup keeps every
        // worker above 0.5 — with a majority of pure spammers per vote
        // set, Dawid–Skene is genuinely unidentifiable and may flip.)
        let accuracies = [0.95, 0.58, 0.58, 0.58, 0.58];
        let mut rng = StdRng::seed_from_u64(5);
        let truths: Vec<Answer> = (0..200).map(|_| Answer(rng.gen_range(0..2u8))).collect();
        let votes: Vec<TaskVotes> = truths
            .iter()
            .enumerate()
            .map(|(i, &truth)| TaskVotes {
                task: TaskId(i as u32),
                votes: accuracies
                    .iter()
                    .enumerate()
                    .map(|(w, &p)| {
                        let a = if rng.gen_bool(p) {
                            truth
                        } else {
                            truth.negated()
                        };
                        vote(w as u32, a.0)
                    })
                    .collect(),
            })
            .collect();
        let em_answers = DawidSkene::default().aggregate(200, 2, &votes);
        let mv_answers = crate::aggregate::MajorityAggregator.aggregate(200, 2, &votes);
        let acc = |answers: &[Option<Answer>]| {
            truths
                .iter()
                .enumerate()
                .filter(|&(i, &t)| answers[i] == Some(t))
                .count()
        };
        let (em_acc, mv_acc) = (acc(&em_answers), acc(&mv_answers));
        assert!(
            em_acc > mv_acc,
            "EM ({em_acc}) should beat majority voting ({mv_acc})"
        );
        assert!(em_acc >= 180, "EM should track the expert: {em_acc}/200");
    }

    #[test]
    fn log_likelihood_is_monotone_over_iterations() {
        let (_, votes) = synthetic_votes(3);
        let mut last = f64::NEG_INFINITY;
        for iters in [1, 2, 5, 20] {
            let fit = DawidSkene {
                max_iterations: iters,
                tolerance: 0.0,
                ..Default::default()
            }
            .fit(60, 2, &votes);
            assert!(
                fit.log_likelihood() >= last - 1e-6,
                "LL decreased: {} after {} iters (was {})",
                fit.log_likelihood(),
                iters,
                last
            );
            last = fit.log_likelihood();
        }
    }

    #[test]
    fn posteriors_are_distributions() {
        let (_, votes) = synthetic_votes(7);
        let fit = DawidSkene::default().fit(60, 2, &votes);
        for i in 0..60 {
            let p = fit.posterior(i);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
        let s: f64 = fit.priors().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unvoted_tasks_stay_unanswered() {
        let votes = vec![TaskVotes {
            task: TaskId(1),
            votes: vec![vote(0, 1)],
        }];
        let out = DawidSkene::default().aggregate(3, 2, &votes);
        assert_eq!(out[0], None);
        assert_eq!(out[1], Some(Answer::YES));
        assert_eq!(out[2], None);
    }

    #[test]
    fn empty_input_is_fine() {
        let out = DawidSkene::default().aggregate(2, 2, &[]);
        assert_eq!(out, vec![None, None]);
    }

    #[test]
    fn works_with_three_choices() {
        let mut rng = StdRng::seed_from_u64(9);
        let truths: Vec<Answer> = (0..60).map(|_| Answer(rng.gen_range(0..3u8))).collect();
        let votes: Vec<TaskVotes> = truths
            .iter()
            .enumerate()
            .map(|(i, &truth)| TaskVotes {
                task: TaskId(i as u32),
                votes: (0..3u32)
                    .map(|w| {
                        let a = if rng.gen_bool(0.85) {
                            truth.0
                        } else {
                            (truth.0 + rng.gen_range(1..3u8)) % 3
                        };
                        vote(w, a)
                    })
                    .collect(),
            })
            .collect();
        let out = DawidSkene::default().aggregate(60, 3, &votes);
        let correct = truths
            .iter()
            .enumerate()
            .filter(|&(i, &t)| out[i] == Some(t))
            .count();
        assert!(correct >= 48, "3-class EM got {correct}/60");
    }
}
