//! The aggregation interface shared by all approaches.
//!
//! An [`Aggregator`] turns the votes collected for every microtask into a
//! final answer per task. Majority voting lives here; Dawid–Skene EM and
//! probabilistic verification implement the same trait in their own
//! modules.

use icrowd_core::answer::{Answer, Vote};
use icrowd_core::task::TaskId;
use icrowd_core::voting::majority_vote;

/// All votes for one microtask.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskVotes {
    /// The microtask.
    pub task: TaskId,
    /// Votes in arrival order.
    pub votes: Vec<Vote>,
}

/// Maps collected votes to final answers.
pub trait Aggregator {
    /// Human-readable name for experiment output.
    fn name(&self) -> &str;

    /// Aggregates `votes` over `num_tasks` tasks, each with
    /// `num_choices` possible answers. Returns one entry per task id
    /// (`None` when a task has no votes at all).
    ///
    /// `votes` need not mention every task and may list tasks in any
    /// order, but must not repeat a task.
    fn aggregate(
        &self,
        num_tasks: usize,
        num_choices: u8,
        votes: &[TaskVotes],
    ) -> Vec<Option<Answer>>;
}

/// Plain majority voting (the RandomMV aggregation).
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityAggregator;

impl Aggregator for MajorityAggregator {
    fn name(&self) -> &str {
        "MajorityVote"
    }

    fn aggregate(
        &self,
        num_tasks: usize,
        num_choices: u8,
        votes: &[TaskVotes],
    ) -> Vec<Option<Answer>> {
        let mut out = vec![None; num_tasks];
        for tv in votes {
            debug_assert!(
                out[tv.task.index()].is_none(),
                "task {} appears twice",
                tv.task
            );
            out[tv.task.index()] = majority_vote(&tv.votes, num_choices).map(|o| o.answer);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::worker::WorkerId;

    fn vote(w: u32, a: u8) -> Vote {
        Vote {
            worker: WorkerId(w),
            answer: Answer(a),
        }
    }

    #[test]
    fn majority_aggregator_covers_all_tasks() {
        let votes = vec![
            TaskVotes {
                task: TaskId(0),
                votes: vec![vote(0, 1), vote(1, 1), vote(2, 0)],
            },
            TaskVotes {
                task: TaskId(2),
                votes: vec![vote(0, 0)],
            },
        ];
        let agg = MajorityAggregator;
        let out = agg.aggregate(3, 2, &votes);
        assert_eq!(out[0], Some(Answer::YES));
        assert_eq!(out[1], None, "unvoted task stays unanswered");
        assert_eq!(out[2], Some(Answer::NO));
        assert_eq!(agg.name(), "MajorityVote");
    }

    #[test]
    fn empty_vote_lists_yield_none() {
        let votes = vec![TaskVotes {
            task: TaskId(0),
            votes: vec![],
        }];
        let out = MajorityAggregator.aggregate(1, 2, &votes);
        assert_eq!(out[0], None);
    }
}
