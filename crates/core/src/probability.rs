//! Worker-set accuracy `Pr(W_t)` — Equation (1) of the paper.
//!
//! Given the per-worker accuracies `p_i^w` of the workers assigned to a
//! microtask, `Pr(W_t)` is the probability that a strict majority of them
//! answer correctly (the majority-vote result is then correct, assuming
//! worker independence and binary answers).
//!
//! Two implementations are provided:
//!
//! * [`worker_set_accuracy`] — an `O(k^2)` Poisson-binomial dynamic
//!   program; this is the one production code uses.
//! * [`worker_set_accuracy_enumerate`] — literal Equation (1): sum over all
//!   `x`-size subsets for `x = (k+1)/2 .. k`. Exponential; kept as a test
//!   oracle and exercised by the `voting` criterion bench as an ablation.

/// Probability that a strict majority of independent workers with
/// accuracies `probs` answer correctly, via the Poisson-binomial DP.
///
/// `dp[j]` is the probability that exactly `j` of the workers processed so
/// far are correct; the answer is the tail mass at `j >= floor(k/2) + 1`.
/// Runs in `O(k^2)` time and `O(k)` space.
///
/// Returns `0.0` for an empty slice (no workers can produce no majority).
///
/// ```
/// use icrowd_core::probability::worker_set_accuracy;
/// // Three workers at 0.7: p^3 + 3 p^2 (1 - p).
/// let p = worker_set_accuracy(&[0.7, 0.7, 0.7]);
/// assert!((p - (0.343 + 3.0 * 0.49 * 0.3)).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics in debug builds if any probability is outside `[0, 1]`.
pub fn worker_set_accuracy(probs: &[f64]) -> f64 {
    if probs.is_empty() {
        return 0.0;
    }
    debug_assert!(
        probs.iter().all(|&p| (0.0..=1.0).contains(&p)),
        "accuracies must lie in [0, 1]"
    );
    let k = probs.len();
    let mut dp = vec![0.0f64; k + 1];
    dp[0] = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        // Walk backwards so dp[j] still holds the value for i workers.
        for j in (0..=i + 1).rev() {
            let from_correct = if j > 0 { dp[j - 1] * p } else { 0.0 };
            let from_wrong = dp[j] * (1.0 - p);
            dp[j] = from_correct + from_wrong;
        }
    }
    let threshold = k / 2 + 1;
    dp[threshold..].iter().sum()
}

/// Literal Equation (1): enumerate every subset of size `x >= (k+1)/2` of
/// the worker set, multiplying member accuracies and non-member error
/// probabilities.
///
/// Exponential in `k`; only suitable for small worker sets (tests, Table 5
/// style ablations).
pub fn worker_set_accuracy_enumerate(probs: &[f64]) -> f64 {
    if probs.is_empty() {
        return 0.0;
    }
    let k = probs.len();
    assert!(k <= 25, "enumeration oracle limited to k <= 25");
    let threshold = k / 2 + 1;
    let mut total = 0.0;
    for mask in 0u32..(1u32 << k) {
        if (mask.count_ones() as usize) < threshold {
            continue;
        }
        let mut prob = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            prob *= if mask & (1 << i) != 0 { p } else { 1.0 - p };
        }
        total += prob;
    }
    total
}

/// Expected marginal gain in `Pr(W_t)` from adding a worker with accuracy
/// `p_new` to a set with accuracies `probs`.
///
/// Used when reasoning about whether an extra assignment is worth paying
/// for (Appendix D.3's observation that gains shrink with `k`).
pub fn marginal_gain(probs: &[f64], p_new: f64) -> f64 {
    let mut extended = Vec::with_capacity(probs.len() + 1);
    extended.extend_from_slice(probs);
    extended.push(p_new);
    worker_set_accuracy(&extended) - worker_set_accuracy(probs)
}

/// Posterior over answers given votes and per-voter accuracies — the
/// naive-Bayes model shared by the CDAS probabilistic-verification
/// aggregation and the budget-saving early-stop extension:
///
/// ```text
/// P(answer = a | votes) ∝ Π_{w voted a} p_w · Π_{w voted a' ≠ a} (1 − p_w)/(c − 1)
/// ```
///
/// Returns the MAP answer and its posterior probability, or `None` for an
/// empty vote slice. Accuracies are clamped to `[0.01, 0.99]`.
pub fn vote_posterior(
    votes: &[crate::answer::Vote],
    num_choices: u8,
    mut accuracy: impl FnMut(crate::worker::WorkerId) -> f64,
) -> Option<(crate::answer::Answer, f64)> {
    if votes.is_empty() {
        return None;
    }
    let c = num_choices as usize;
    let mut logp = vec![0.0f64; c];
    for v in votes {
        let p = accuracy(v.worker).clamp(0.01, 0.99);
        let wrong = ((1.0 - p) / (c as f64 - 1.0)).ln();
        let right = p.ln();
        for (a, lp) in logp.iter_mut().enumerate() {
            *lp += if a == v.answer.index() { right } else { wrong };
        }
    }
    let m = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let z: f64 = logp.iter().map(|&lp| (lp - m).exp()).sum();
    let (best, &best_lp) = logp
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ib.cmp(ia)))?;
    Some((crate::answer::Answer(best as u8), (best_lp - m).exp() / z))
}

/// Variance of a `Beta(n1 + 1, n0 + 1)` posterior — the paper's Step-3
/// uncertainty measure for a worker who answered `n1` similar microtasks
/// correctly and `n0` incorrectly (Section 4.1, Step 3):
///
/// ```text
/// (N1+1)(N0+1) / ((N1+N0+2)^2 (N1+N0+3))
/// ```
pub fn beta_variance(n1: f64, n0: f64) -> f64 {
    debug_assert!(n1 >= 0.0 && n0 >= 0.0, "counts must be non-negative");
    let a = n1 + 1.0;
    let b = n0 + 1.0;
    let s = a + b;
    (a * b) / (s * s * (s + 1.0))
}

/// Mean of the same `Beta(n1 + 1, n0 + 1)` posterior (Laplace-smoothed
/// accuracy estimate).
pub fn beta_mean(n1: f64, n0: f64) -> f64 {
    debug_assert!(n1 >= 0.0 && n0 >= 0.0, "counts must be non-negative");
    (n1 + 1.0) / (n1 + n0 + 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn single_worker_is_their_own_majority() {
        assert!(close(worker_set_accuracy(&[0.8]), 0.8));
        assert!(close(worker_set_accuracy_enumerate(&[0.8]), 0.8));
    }

    #[test]
    fn three_identical_workers_matches_closed_form() {
        // P(majority of 3 with accuracy p) = p^3 + 3 p^2 (1-p).
        let p: f64 = 0.7;
        let expect = p.powi(3) + 3.0 * p.powi(2) * (1.0 - p);
        assert!(close(worker_set_accuracy(&[p, p, p]), expect));
        assert!(close(worker_set_accuracy_enumerate(&[p, p, p]), expect));
    }

    #[test]
    fn dp_matches_enumeration_on_mixed_sets() {
        let cases: &[&[f64]] = &[
            &[0.9, 0.6, 0.7],
            &[0.5, 0.5, 0.5, 0.5, 0.5],
            &[1.0, 0.0, 0.5],
            &[0.99, 0.01, 0.5, 0.7, 0.3, 0.8, 0.65],
            &[0.3, 0.4], // even k: needs both correct
        ];
        for c in cases {
            assert!(
                close(worker_set_accuracy(c), worker_set_accuracy_enumerate(c)),
                "mismatch for {c:?}"
            );
        }
    }

    #[test]
    fn even_k_requires_strict_majority() {
        // Two workers: both must be right (1 of 2 is not a strict majority).
        assert!(close(worker_set_accuracy(&[0.8, 0.5]), 0.8 * 0.5));
    }

    #[test]
    fn empty_set_has_zero_accuracy() {
        assert_eq!(worker_set_accuracy(&[]), 0.0);
        assert_eq!(worker_set_accuracy_enumerate(&[]), 0.0);
    }

    #[test]
    fn perfect_and_hopeless_workers() {
        assert!(close(worker_set_accuracy(&[1.0, 1.0, 1.0]), 1.0));
        assert!(close(worker_set_accuracy(&[0.0, 0.0, 0.0]), 0.0));
    }

    #[test]
    fn adding_good_worker_to_even_set_helps() {
        let base = [0.7, 0.7];
        let gain = marginal_gain(&base, 0.9);
        assert!(gain > 0.0);
        // Adding a coin-flipper to an odd set cannot raise accuracy above
        // the DP's value for the extended set; check consistency.
        let direct = worker_set_accuracy(&[0.7, 0.7, 0.9]);
        assert!(close(worker_set_accuracy(&base) + gain, direct));
    }

    #[test]
    fn vote_posterior_matches_hand_computation() {
        use crate::answer::{Answer, Vote};
        use crate::worker::WorkerId;
        let votes = vec![
            Vote {
                worker: WorkerId(0),
                answer: Answer::YES,
            },
            Vote {
                worker: WorkerId(1),
                answer: Answer::NO,
            },
        ];
        // p0 = 0.9, p1 = 0.6: P(YES) ∝ 0.9 * 0.4, P(NO) ∝ 0.1 * 0.6.
        let (ans, conf) = vote_posterior(&votes, 2, |w| if w.0 == 0 { 0.9 } else { 0.6 }).unwrap();
        assert_eq!(ans, Answer::YES);
        let want = 0.36 / (0.36 + 0.06);
        assert!((conf - want).abs() < 1e-12);
        // Empty votes: None.
        assert!(vote_posterior(&[], 2, |_| 0.5).is_none());
    }

    #[test]
    fn vote_posterior_confidence_grows_with_unanimity() {
        use crate::answer::{Answer, Vote};
        use crate::worker::WorkerId;
        let mk = |n: u32| {
            (0..n)
                .map(|i| Vote {
                    worker: WorkerId(i),
                    answer: Answer::YES,
                })
                .collect::<Vec<_>>()
        };
        let (_, c2) = vote_posterior(&mk(2), 2, |_| 0.8).unwrap();
        let (_, c3) = vote_posterior(&mk(3), 2, |_| 0.8).unwrap();
        assert!(c3 > c2);
    }

    #[test]
    fn beta_moments_match_known_values() {
        // Uniform prior: Beta(1,1) has mean 1/2, variance 1/12.
        assert!(close(beta_mean(0.0, 0.0), 0.5));
        assert!(close(beta_variance(0.0, 0.0), 1.0 / 12.0));
        // Beta(4, 2): mean 2/3, variance (4*2)/(36*7).
        assert!(close(beta_mean(3.0, 1.0), 4.0 / 6.0));
        assert!(close(beta_variance(3.0, 1.0), 8.0 / (36.0 * 7.0)));
    }

    #[test]
    fn variance_shrinks_with_evidence() {
        assert!(beta_variance(10.0, 10.0) < beta_variance(1.0, 1.0));
        assert!(beta_variance(100.0, 0.0) < beta_variance(2.0, 0.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn dp_equals_enumeration(probs in proptest::collection::vec(0.0f64..=1.0, 1..10)) {
                let dp = worker_set_accuracy(&probs);
                let en = worker_set_accuracy_enumerate(&probs);
                prop_assert!((dp - en).abs() < 1e-9, "dp={dp} enum={en}");
            }

            #[test]
            fn accuracy_is_a_probability(probs in proptest::collection::vec(0.0f64..=1.0, 0..15)) {
                let p = worker_set_accuracy(&probs);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            }

            #[test]
            fn monotone_in_member_accuracy(
                probs in proptest::collection::vec(0.01f64..=0.99, 1..9),
                idx in 0usize..9,
                bump in 0.0f64..=0.5,
            ) {
                let idx = idx % probs.len();
                let base = worker_set_accuracy(&probs);
                let mut better = probs.clone();
                better[idx] = (better[idx] + bump).min(1.0);
                let improved = worker_set_accuracy(&better);
                prop_assert!(improved + 1e-12 >= base);
            }

            #[test]
            fn beta_variance_positive_and_bounded(n1 in 0.0f64..1e4, n0 in 0.0f64..1e4) {
                let v = beta_variance(n1, n0);
                prop_assert!(v > 0.0);
                prop_assert!(v <= 0.25);
            }
        }
    }
}
