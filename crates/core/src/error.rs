//! Error types shared across the workspace.

use std::fmt;

use crate::answer::Answer;
use crate::task::TaskId;
use crate::worker::WorkerId;

/// Errors raised by the core types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A worker tried to vote twice on the same microtask.
    DuplicateVote {
        /// The microtask.
        task: TaskId,
        /// The offending worker.
        worker: WorkerId,
    },
    /// An answer was outside the microtask's choice range.
    InvalidAnswer {
        /// The microtask.
        task: TaskId,
        /// The out-of-range answer.
        answer: Answer,
    },
    /// A microtask already collected its `k` votes.
    AssignmentExhausted {
        /// The microtask.
        task: TaskId,
    },
    /// A task id was not present in the task set.
    UnknownTask {
        /// The unknown id.
        task: TaskId,
    },
    /// A worker id was not registered.
    UnknownWorker {
        /// The unknown id.
        worker: WorkerId,
    },
    /// Task ids in a [`crate::task::TaskSet`] were not dense `0..n`.
    NonDenseTaskIds {
        /// Index at which the mismatch occurred.
        position: usize,
        /// The id found there.
        found: TaskId,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateVote { task, worker } => {
                write!(f, "worker {worker} already voted on task {task}")
            }
            CoreError::InvalidAnswer { task, answer } => {
                write!(f, "answer {answer} is out of range for task {task}")
            }
            CoreError::AssignmentExhausted { task } => {
                write!(f, "task {task} already collected all its assignments")
            }
            CoreError::UnknownTask { task } => write!(f, "unknown task {task}"),
            CoreError::UnknownWorker { worker } => write!(f, "unknown worker {worker}"),
            CoreError::NonDenseTaskIds { position, found } => write!(
                f,
                "task ids must be dense: expected t{} at position {position}, found {found}",
                position + 1
            ),
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::DuplicateVote {
            task: TaskId(0),
            worker: WorkerId(2),
        };
        assert_eq!(e.to_string(), "worker w3 already voted on task t1");

        let e = CoreError::InvalidConfig {
            reason: "alpha must be positive".into(),
        };
        assert!(e.to_string().contains("alpha must be positive"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<CoreError>();
    }
}
