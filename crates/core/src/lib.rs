//! # icrowd-core
//!
//! Foundational types and voting mathematics for the iCrowd adaptive
//! crowdsourcing framework (Fan et al., SIGMOD 2015).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`task`] — microtasks ([`Microtask`]), task identifiers, domains and
//!   ground truth.
//! * [`worker`] — worker identifiers, worker records and activity tracking
//!   (the paper's *active*/*inactive* distinction, Section 4.1 Step 1).
//! * [`answer`] — answers, votes and per-task vote sets with consensus
//!   detection (*globally completed* microtasks, Section 2.1).
//! * [`voting`] — simple and weighted majority voting (Section 2.1).
//! * [`probability`] — worker-set accuracy `Pr(W_t)` from Equation (1),
//!   computed both by exact subset enumeration and by an `O(k^2)`
//!   Poisson-binomial dynamic program.
//! * [`config`] — tunable parameters (`k`, `alpha`, thresholds, ...).
//! * [`error`] — the crate-level error type.
//!
//! The crate is dependency-light by design: everything downstream (graph
//! estimation, assignment, platform simulation) builds on these types.

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod answer;
pub mod config;
pub mod error;
pub mod probability;
pub mod task;
pub mod voting;
pub mod worker;

pub use answer::{Answer, Vote, VoteSet};
pub use config::{ICrowdConfig, PprConfig, WarmupConfig};
pub use error::CoreError;
pub use probability::{
    beta_mean, beta_variance, marginal_gain, worker_set_accuracy, worker_set_accuracy_enumerate,
};
pub use task::{Domain, DomainRegistry, Microtask, TaskId, TaskSet};
pub use voting::{majority_vote, weighted_majority_vote, ConsensusState, VoteOutcome};
pub use worker::{ActivityTracker, Tick, WorkerId, WorkerRecord};
