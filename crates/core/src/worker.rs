//! Workers, worker identifiers and activity tracking.
//!
//! The worker set in crowdsourcing is *dynamic* (Section 2.1): workers
//! appear, work for a while and leave. iCrowd's assignment Step 1
//! (Section 4.1) identifies *active* workers either by a time window since
//! their last request or by whether they currently hold a HIT; both signals
//! are represented here.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a worker, dense and zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0 + 1)
    }
}

/// Logical time, in platform ticks.
///
/// The simulator advances a logical clock; using ticks instead of wall-clock
/// `Instant`s keeps every experiment deterministic and replayable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(pub u64);

impl Tick {
    /// Tick zero.
    pub const ZERO: Tick = Tick(0);

    /// The tick `delta` ticks later.
    #[inline]
    pub fn plus(self, delta: u64) -> Tick {
        Tick(self.0 + delta)
    }

    /// Ticks elapsed since `earlier` (saturating).
    #[inline]
    pub fn since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Mutable per-worker record kept by the framework.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerRecord {
    /// The worker's id.
    pub id: WorkerId,
    /// Opaque external handle (e.g. the AMT worker id string).
    pub external_id: String,
    /// Tick of the worker's most recent task request.
    pub last_request: Tick,
    /// Whether the worker currently holds a HIT (Appendix A activity signal).
    pub holds_hit: bool,
    /// Whether warm-up rejected this worker as unqualified (Section 2.2).
    pub rejected: bool,
    /// Number of answers this worker has submitted.
    pub completed: u32,
}

impl WorkerRecord {
    /// Creates a record for a newly seen worker.
    pub fn new(id: WorkerId, external_id: impl Into<String>, now: Tick) -> Self {
        Self {
            id,
            external_id: external_id.into(),
            last_request: now,
            holds_hit: false,
            rejected: false,
            completed: 0,
        }
    }
}

/// Tracks which workers are currently *active*.
///
/// A worker is active if she requested a task within the last
/// `window` ticks **or** currently holds a HIT — the two signals Section
/// 4.1 Step 1 proposes. Rejected workers are never active.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityTracker {
    window: u64,
    workers: Vec<WorkerRecord>,
}

impl ActivityTracker {
    /// Creates a tracker with the given activity window (in ticks).
    pub fn new(window: u64) -> Self {
        Self {
            window,
            workers: Vec::new(),
        }
    }

    /// The activity window in ticks.
    #[inline]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Registers a new worker, returning its dense id.
    pub fn register(&mut self, external_id: impl Into<String>, now: Tick) -> WorkerId {
        let id = WorkerId(u32::try_from(self.workers.len()).expect("more than u32::MAX workers"));
        self.workers.push(WorkerRecord::new(id, external_id, now));
        id
    }

    /// Finds the worker with the given external id.
    pub fn find_external(&self, external_id: &str) -> Option<WorkerId> {
        self.workers
            .iter()
            .find(|w| w.external_id == external_id)
            .map(|w| w.id)
    }

    /// Marks a task request from `worker` at `now`.
    pub fn touch(&mut self, worker: WorkerId, now: Tick) {
        if let Some(w) = self.workers.get_mut(worker.index()) {
            w.last_request = now;
        }
    }

    /// Sets whether `worker` currently holds a HIT.
    pub fn set_holds_hit(&mut self, worker: WorkerId, holds: bool) {
        if let Some(w) = self.workers.get_mut(worker.index()) {
            w.holds_hit = holds;
        }
    }

    /// Marks `worker` as rejected by warm-up.
    pub fn reject(&mut self, worker: WorkerId) {
        if let Some(w) = self.workers.get_mut(worker.index()) {
            w.rejected = true;
        }
    }

    /// Increments the completed-answer counter of `worker`.
    pub fn record_completion(&mut self, worker: WorkerId) {
        if let Some(w) = self.workers.get_mut(worker.index()) {
            w.completed += 1;
        }
    }

    /// Whether `worker` is active at `now`.
    pub fn is_active(&self, worker: WorkerId, now: Tick) -> bool {
        self.workers.get(worker.index()).is_some_and(|w| {
            !w.rejected && (w.holds_hit || now.since(w.last_request) < self.window)
        })
    }

    /// All workers active at `now`, in id order.
    pub fn active_workers(&self, now: Tick) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|w| !w.rejected && (w.holds_hit || now.since(w.last_request) < self.window))
            .map(|w| w.id)
            .collect()
    }

    /// The record for `worker`, if registered.
    pub fn record(&self, worker: WorkerId) -> Option<&WorkerRecord> {
        self.workers.get(worker.index())
    }

    /// Number of registered workers (active or not).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Iterates over all worker records.
    pub fn iter(&self) -> impl Iterator<Item = &WorkerRecord> {
        self.workers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_arithmetic() {
        let t = Tick(10);
        assert_eq!(t.plus(5), Tick(15));
        assert_eq!(Tick(15).since(t), 5);
        assert_eq!(t.since(Tick(15)), 0, "since() saturates");
        assert_eq!(t.to_string(), "@10");
    }

    #[test]
    fn register_and_find() {
        let mut tr = ActivityTracker::new(30);
        let a = tr.register("AMT-A", Tick(0));
        let b = tr.register("AMT-B", Tick(0));
        assert_eq!(a, WorkerId(0));
        assert_eq!(b, WorkerId(1));
        assert_eq!(tr.find_external("AMT-B"), Some(b));
        assert_eq!(tr.find_external("nope"), None);
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn activity_window_expires() {
        let mut tr = ActivityTracker::new(30);
        let w = tr.register("A", Tick(0));
        assert!(tr.is_active(w, Tick(29)));
        assert!(!tr.is_active(w, Tick(30)));
        tr.touch(w, Tick(40));
        assert!(tr.is_active(w, Tick(69)));
        assert!(!tr.is_active(w, Tick(70)));
    }

    #[test]
    fn holding_a_hit_keeps_worker_active() {
        let mut tr = ActivityTracker::new(30);
        let w = tr.register("A", Tick(0));
        tr.set_holds_hit(w, true);
        assert!(tr.is_active(w, Tick(1_000_000)));
        tr.set_holds_hit(w, false);
        assert!(!tr.is_active(w, Tick(1_000_000)));
    }

    #[test]
    fn rejected_worker_is_never_active() {
        let mut tr = ActivityTracker::new(30);
        let w = tr.register("A", Tick(0));
        tr.set_holds_hit(w, true);
        tr.reject(w);
        assert!(!tr.is_active(w, Tick(0)));
        assert!(tr.active_workers(Tick(0)).is_empty());
    }

    #[test]
    fn active_workers_filters_by_now() {
        let mut tr = ActivityTracker::new(10);
        let a = tr.register("A", Tick(0));
        let _b = tr.register("B", Tick(0));
        tr.touch(a, Tick(20));
        assert_eq!(tr.active_workers(Tick(25)), vec![a]);
    }

    #[test]
    fn completion_counter() {
        let mut tr = ActivityTracker::new(10);
        let w = tr.register("A", Tick(0));
        tr.record_completion(w);
        tr.record_completion(w);
        assert_eq!(tr.record(w).unwrap().completed, 2);
    }
}
