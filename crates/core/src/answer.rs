//! Answers, votes and per-task vote sets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::task::TaskId;
use crate::worker::WorkerId;

/// A worker's answer to a microtask.
///
/// Answers are small integers in `0..num_choices`; for the paper's binary
/// microtasks use [`Answer::YES`] and [`Answer::NO`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Answer(pub u8);

impl Answer {
    /// The affirmative choice of a binary microtask.
    pub const YES: Answer = Answer(1);
    /// The negative choice of a binary microtask.
    pub const NO: Answer = Answer(0);

    /// The answer as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// For a binary answer, the opposite choice.
    #[inline]
    pub fn negated(self) -> Answer {
        debug_assert!(self.0 < 2, "negated() is only defined for binary answers");
        Answer(1 - self.0)
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Answer::YES => write!(f, "YES"),
            Answer::NO => write!(f, "NO"),
            Answer(n) => write!(f, "choice{n}"),
        }
    }
}

/// A single (worker, answer) vote on a microtask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vote {
    /// The worker who voted.
    pub worker: WorkerId,
    /// The answer they gave.
    pub answer: Answer,
}

/// All votes collected so far for one microtask, with consensus bookkeeping.
///
/// A microtask is *globally completed* (Section 2.1) once at least
/// `(k+1)/2` of its `k` assigned workers agree on an answer; the agreed
/// answer is the *consensus answer* `ans*`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VoteSet {
    task: TaskId,
    assignment_size: usize,
    votes: Vec<Vote>,
    counts: Vec<u32>,
}

impl VoteSet {
    /// Creates an empty vote set for `task` with `num_choices` possible
    /// answers and assignment size `k`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `num_choices < 2`.
    pub fn new(task: TaskId, num_choices: u8, k: usize) -> Self {
        assert!(k > 0, "assignment size k must be positive");
        assert!(num_choices >= 2, "a microtask needs at least two choices");
        Self {
            task,
            assignment_size: k,
            votes: Vec::with_capacity(k),
            counts: vec![0; num_choices as usize],
        }
    }

    /// The task this vote set belongs to.
    #[inline]
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The assignment size `k`.
    #[inline]
    pub fn assignment_size(&self) -> usize {
        self.assignment_size
    }

    /// Records a vote.
    ///
    /// # Errors
    /// * [`crate::CoreError::DuplicateVote`] if the worker already voted.
    /// * [`crate::CoreError::InvalidAnswer`] if the answer is out of range.
    /// * [`crate::CoreError::AssignmentExhausted`] if `k` votes were already
    ///   collected.
    pub fn record(&mut self, vote: Vote) -> Result<(), crate::CoreError> {
        if vote.answer.index() >= self.counts.len() {
            return Err(crate::CoreError::InvalidAnswer {
                task: self.task,
                answer: vote.answer,
            });
        }
        if self.votes.len() >= self.assignment_size {
            return Err(crate::CoreError::AssignmentExhausted { task: self.task });
        }
        if self.votes.iter().any(|v| v.worker == vote.worker) {
            return Err(crate::CoreError::DuplicateVote {
                task: self.task,
                worker: vote.worker,
            });
        }
        self.counts[vote.answer.index()] += 1;
        self.votes.push(vote);
        Ok(())
    }

    /// The votes recorded so far, in arrival order.
    #[inline]
    pub fn votes(&self) -> &[Vote] {
        &self.votes
    }

    /// Number of votes recorded so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// Whether no votes have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// Per-answer vote counts, indexed by answer.
    #[inline]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The consensus answer, if some answer has reached at least
    /// `(k+1)/2` votes (strict majority of the assignment size).
    ///
    /// With odd `k` this is exactly the paper's condition; for even `k` the
    /// threshold `(k+1)/2` rounded up (i.e. `k/2 + 1`) preserves "more than
    /// half".
    pub fn consensus(&self) -> Option<Answer> {
        let threshold = (self.assignment_size / 2 + 1) as u32;
        self.counts
            .iter()
            .position(|&c| c >= threshold)
            .map(|i| Answer(i as u8))
    }

    /// Whether the task is globally completed (a consensus answer exists).
    #[inline]
    pub fn is_globally_completed(&self) -> bool {
        self.consensus().is_some()
    }

    /// Whether a consensus is still reachable given remaining capacity.
    ///
    /// Returns `false` when even if all outstanding votes agreed, no answer
    /// could reach the majority threshold (only possible for `num_choices >
    /// 2`).
    pub fn consensus_reachable(&self) -> bool {
        if self.is_globally_completed() {
            return true;
        }
        let remaining = (self.assignment_size - self.votes.len()) as u32;
        let threshold = (self.assignment_size / 2 + 1) as u32;
        self.counts.iter().any(|&c| c + remaining >= threshold)
    }

    /// Workers who have voted, in arrival order.
    pub fn voters(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.votes.iter().map(|v| v.worker)
    }

    /// The answer a specific worker gave, if any.
    pub fn answer_of(&self, worker: WorkerId) -> Option<Answer> {
        self.votes
            .iter()
            .find(|v| v.worker == worker)
            .map(|v| v.answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vote(w: u32, a: Answer) -> Vote {
        Vote {
            worker: WorkerId(w),
            answer: a,
        }
    }

    #[test]
    fn answer_display_and_negate() {
        assert_eq!(Answer::YES.to_string(), "YES");
        assert_eq!(Answer::NO.to_string(), "NO");
        assert_eq!(Answer(3).to_string(), "choice3");
        assert_eq!(Answer::YES.negated(), Answer::NO);
        assert_eq!(Answer::NO.negated(), Answer::YES);
    }

    #[test]
    fn consensus_requires_majority_of_k() {
        let mut vs = VoteSet::new(TaskId(0), 2, 3);
        vs.record(vote(1, Answer::YES)).unwrap();
        assert_eq!(vs.consensus(), None);
        vs.record(vote(2, Answer::NO)).unwrap();
        assert_eq!(vs.consensus(), None);
        vs.record(vote(3, Answer::YES)).unwrap();
        assert_eq!(vs.consensus(), Some(Answer::YES));
        assert!(vs.is_globally_completed());
    }

    #[test]
    fn early_consensus_with_first_two_votes() {
        let mut vs = VoteSet::new(TaskId(0), 2, 3);
        vs.record(vote(1, Answer::NO)).unwrap();
        vs.record(vote(2, Answer::NO)).unwrap();
        // 2 >= (3+1)/2 = 2: globally completed before the third vote arrives.
        assert_eq!(vs.consensus(), Some(Answer::NO));
    }

    #[test]
    fn duplicate_vote_rejected() {
        let mut vs = VoteSet::new(TaskId(0), 2, 3);
        vs.record(vote(1, Answer::YES)).unwrap();
        let err = vs.record(vote(1, Answer::NO)).unwrap_err();
        assert!(matches!(err, crate::CoreError::DuplicateVote { .. }));
    }

    #[test]
    fn out_of_range_answer_rejected() {
        let mut vs = VoteSet::new(TaskId(0), 2, 3);
        let err = vs.record(vote(1, Answer(2))).unwrap_err();
        assert!(matches!(err, crate::CoreError::InvalidAnswer { .. }));
    }

    #[test]
    fn capacity_enforced() {
        let mut vs = VoteSet::new(TaskId(0), 2, 1);
        vs.record(vote(1, Answer::YES)).unwrap();
        let err = vs.record(vote(2, Answer::YES)).unwrap_err();
        assert!(matches!(err, crate::CoreError::AssignmentExhausted { .. }));
    }

    #[test]
    fn consensus_reachability_three_choices() {
        // k = 3, three choices, all three votes disagree: no consensus and
        // none reachable.
        let mut vs = VoteSet::new(TaskId(0), 3, 3);
        vs.record(vote(1, Answer(0))).unwrap();
        vs.record(vote(2, Answer(1))).unwrap();
        assert!(vs.consensus_reachable());
        vs.record(vote(3, Answer(2))).unwrap();
        assert_eq!(vs.consensus(), None);
        assert!(!vs.consensus_reachable());
    }

    #[test]
    fn answer_of_finds_worker_vote() {
        let mut vs = VoteSet::new(TaskId(0), 2, 3);
        vs.record(vote(7, Answer::YES)).unwrap();
        assert_eq!(vs.answer_of(WorkerId(7)), Some(Answer::YES));
        assert_eq!(vs.answer_of(WorkerId(8)), None);
    }
}
