//! Majority voting and answer aggregation (Section 2.1).
//!
//! iCrowd derives a microtask's result by (weighted) majority voting over
//! the `k` collected answers. This module provides:
//!
//! * [`majority_vote`] — plain majority voting with deterministic,
//!   lowest-answer tie-breaking;
//! * [`weighted_majority_vote`] — votes weighted by per-worker accuracy
//!   (used by AvgAccPV-style aggregations);
//! * [`ConsensusState`] — bookkeeping for a whole task set: which tasks are
//!   globally completed and what their consensus answers are.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::answer::{Answer, Vote, VoteSet};
use crate::task::{TaskId, TaskSet};
use crate::worker::WorkerId;

/// Result of a (weighted) majority vote.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoteOutcome {
    /// The winning answer.
    pub answer: Answer,
    /// The winner's (weighted) vote mass.
    pub support: f64,
    /// Total (weighted) vote mass cast.
    pub total: f64,
    /// Whether the top two answers tied exactly (winner chosen as the
    /// lowest answer index for determinism).
    pub tied: bool,
}

impl VoteOutcome {
    /// Fraction of the vote mass behind the winner, in `[0, 1]`.
    pub fn margin(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.support / self.total
        }
    }
}

/// Plain majority voting over `votes` with `num_choices` possible answers.
///
/// Ties are broken toward the lowest answer index so results are
/// deterministic; the `tied` flag reports when this happened. Returns
/// `None` for an empty vote slice.
///
/// ```
/// use icrowd_core::{majority_vote, Answer, Vote, WorkerId};
/// let votes = vec![
///     Vote { worker: WorkerId(0), answer: Answer::YES },
///     Vote { worker: WorkerId(1), answer: Answer::NO },
///     Vote { worker: WorkerId(2), answer: Answer::YES },
/// ];
/// let outcome = majority_vote(&votes, 2).unwrap();
/// assert_eq!(outcome.answer, Answer::YES);
/// assert_eq!(outcome.support, 2.0);
/// ```
pub fn majority_vote(votes: &[Vote], num_choices: u8) -> Option<VoteOutcome> {
    weighted_majority_vote(votes, num_choices, |_| 1.0)
}

/// Majority voting where each worker's vote is weighted by `weight(worker)`.
///
/// Weights must be non-negative; a common choice is the worker's estimated
/// accuracy, or the paper's probabilistic-verification log-odds weights.
/// Returns `None` if `votes` is empty or all weights are zero.
pub fn weighted_majority_vote(
    votes: &[Vote],
    num_choices: u8,
    mut weight: impl FnMut(WorkerId) -> f64,
) -> Option<VoteOutcome> {
    if votes.is_empty() {
        return None;
    }
    let mut mass = vec![0.0f64; num_choices as usize];
    let mut total = 0.0;
    for v in votes {
        let w = weight(v.worker);
        debug_assert!(w >= 0.0, "vote weights must be non-negative");
        mass[v.answer.index()] += w;
        total += w;
    }
    if total == 0.0 {
        return None;
    }
    let (winner, &support) = mass
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ib.cmp(ia)))
        .expect("num_choices >= 1");
    let tied = mass
        .iter()
        .enumerate()
        .any(|(i, &m)| i != winner && (m - support).abs() < f64::EPSILON * support.max(1.0));
    Some(VoteOutcome {
        answer: Answer(winner as u8),
        support,
        total,
        tied,
    })
}

/// Consensus bookkeeping for an entire task set.
///
/// Holds one [`VoteSet`] per microtask and tracks the set of *globally
/// completed* microtasks `T^d` together with their consensus answers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsensusState {
    vote_sets: Vec<VoteSet>,
    completed: Vec<Option<Answer>>,
    num_completed: usize,
}

impl ConsensusState {
    /// Creates consensus state for `tasks` with assignment size `k`.
    pub fn new(tasks: &TaskSet, k: usize) -> Self {
        let vote_sets = tasks
            .iter()
            .map(|t| VoteSet::new(t.id, t.num_choices, k))
            .collect::<Vec<_>>();
        let completed = vec![None; tasks.len()];
        Self {
            vote_sets,
            completed,
            num_completed: 0,
        }
    }

    /// Records a vote, returning the new consensus answer if this vote just
    /// globally completed the task.
    ///
    /// # Errors
    /// Propagates [`VoteSet::record`] errors and rejects unknown tasks.
    pub fn record(&mut self, task: TaskId, vote: Vote) -> Result<Option<Answer>, crate::CoreError> {
        let vs = self
            .vote_sets
            .get_mut(task.index())
            .ok_or(crate::CoreError::UnknownTask { task })?;
        vs.record(vote)?;
        if self.completed[task.index()].is_none() {
            if let Some(ans) = vs.consensus() {
                self.completed[task.index()] = Some(ans);
                self.num_completed += 1;
                return Ok(Some(ans));
            }
        }
        Ok(None)
    }

    /// Marks `task` as globally completed with a known answer without any
    /// crowd votes — used for qualification microtasks, whose answers the
    /// requester labelled herself (Section 2.2), so no crowd capacity is
    /// spent re-answering them.
    ///
    /// No-op if the task is already completed.
    pub fn preset(&mut self, task: TaskId, answer: Answer) {
        if self.completed[task.index()].is_none() {
            self.completed[task.index()] = Some(answer);
            self.num_completed += 1;
        }
    }

    /// The vote set of `task`.
    pub fn votes(&self, task: TaskId) -> &VoteSet {
        &self.vote_sets[task.index()]
    }

    /// The consensus answer of `task`, if globally completed.
    #[inline]
    pub fn consensus(&self, task: TaskId) -> Option<Answer> {
        self.completed[task.index()]
    }

    /// Whether `task` is globally completed.
    #[inline]
    pub fn is_completed(&self, task: TaskId) -> bool {
        self.completed[task.index()].is_some()
    }

    /// Number of globally completed tasks.
    #[inline]
    pub fn num_completed(&self) -> usize {
        self.num_completed
    }

    /// Total number of tasks tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.vote_sets.len()
    }

    /// Whether the state tracks no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vote_sets.is_empty()
    }

    /// Whether every task is globally completed.
    #[inline]
    pub fn all_completed(&self) -> bool {
        self.num_completed == self.vote_sets.len()
    }

    /// Ids of globally completed tasks (the paper's `T^d`).
    pub fn completed_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.completed
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| TaskId(i as u32))
    }

    /// Ids of tasks not yet globally completed (the paper's `T − T^d`).
    pub fn uncompleted_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.completed
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| TaskId(i as u32))
    }

    /// Workers already assigned to `task` (have voted), the paper's `W^d(t)`.
    pub fn assigned_workers(&self, task: TaskId) -> impl Iterator<Item = WorkerId> + '_ {
        self.vote_sets[task.index()].voters()
    }

    /// Falls back to majority voting on incomplete tasks to derive a final
    /// answer for every task; completed tasks keep their consensus.
    ///
    /// Used at campaign end to emit results for tasks whose vote sets never
    /// reached the `(k+1)/2` threshold (possible for `num_choices > 2` or
    /// when the campaign is truncated).
    pub fn final_answers(&self, tasks: &TaskSet) -> HashMap<TaskId, Answer> {
        let mut out = HashMap::with_capacity(self.vote_sets.len());
        for (i, vs) in self.vote_sets.iter().enumerate() {
            let id = TaskId(i as u32);
            let ans = self.completed[i]
                .or_else(|| majority_vote(vs.votes(), tasks[id].num_choices).map(|o| o.answer));
            if let Some(a) = ans {
                out.insert(id, a);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Microtask;

    fn vote(w: u32, a: Answer) -> Vote {
        Vote {
            worker: WorkerId(w),
            answer: a,
        }
    }

    fn tasks(n: u32) -> TaskSet {
        (0..n)
            .map(|i| Microtask::binary(TaskId(i), format!("task {i}")))
            .collect()
    }

    #[test]
    fn simple_majority() {
        let votes = vec![
            vote(1, Answer::YES),
            vote(2, Answer::NO),
            vote(3, Answer::YES),
        ];
        let out = majority_vote(&votes, 2).unwrap();
        assert_eq!(out.answer, Answer::YES);
        assert_eq!(out.support, 2.0);
        assert_eq!(out.total, 3.0);
        assert!(!out.tied);
        assert!((out.margin() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tie_breaks_to_lowest_answer_and_flags() {
        let votes = vec![vote(1, Answer::YES), vote(2, Answer::NO)];
        let out = majority_vote(&votes, 2).unwrap();
        assert_eq!(out.answer, Answer::NO, "lowest answer index wins ties");
        assert!(out.tied);
    }

    #[test]
    fn weights_flip_the_outcome() {
        let votes = vec![
            vote(1, Answer::YES),
            vote(2, Answer::NO),
            vote(3, Answer::NO),
        ];
        // Worker 1 is far more reliable than the other two combined.
        let out = weighted_majority_vote(&votes, 2, |w| if w.0 == 1 { 0.99 } else { 0.3 }).unwrap();
        assert_eq!(out.answer, Answer::YES);
    }

    #[test]
    fn empty_and_zero_weight_votes_yield_none() {
        assert!(majority_vote(&[], 2).is_none());
        let votes = vec![vote(1, Answer::YES)];
        assert!(weighted_majority_vote(&votes, 2, |_| 0.0).is_none());
    }

    #[test]
    fn consensus_state_tracks_completion() {
        let ts = tasks(3);
        let mut cs = ConsensusState::new(&ts, 3);
        assert_eq!(cs.num_completed(), 0);
        assert!(cs
            .record(TaskId(0), vote(1, Answer::YES))
            .unwrap()
            .is_none());
        let done = cs.record(TaskId(0), vote(2, Answer::YES)).unwrap();
        assert_eq!(
            done,
            Some(Answer::YES),
            "2/3 same answers complete the task"
        );
        assert!(cs.is_completed(TaskId(0)));
        assert_eq!(cs.num_completed(), 1);
        assert_eq!(cs.completed_tasks().collect::<Vec<_>>(), vec![TaskId(0)]);
        assert_eq!(
            cs.uncompleted_tasks().collect::<Vec<_>>(),
            vec![TaskId(1), TaskId(2)]
        );
        // The third vote does not re-report completion.
        assert!(cs.record(TaskId(0), vote(3, Answer::NO)).unwrap().is_none());
        assert_eq!(cs.consensus(TaskId(0)), Some(Answer::YES));
    }

    #[test]
    fn unknown_task_rejected() {
        let ts = tasks(1);
        let mut cs = ConsensusState::new(&ts, 3);
        let err = cs.record(TaskId(9), vote(1, Answer::YES)).unwrap_err();
        assert!(matches!(err, crate::CoreError::UnknownTask { .. }));
    }

    #[test]
    fn final_answers_fall_back_to_majority() {
        let ts = tasks(2);
        let mut cs = ConsensusState::new(&ts, 3);
        // Task 0 completed; task 1 has a single vote (no consensus yet).
        cs.record(TaskId(0), vote(1, Answer::NO)).unwrap();
        cs.record(TaskId(0), vote(2, Answer::NO)).unwrap();
        cs.record(TaskId(1), vote(1, Answer::YES)).unwrap();
        let answers = cs.final_answers(&ts);
        assert_eq!(answers[&TaskId(0)], Answer::NO);
        assert_eq!(answers[&TaskId(1)], Answer::YES);
    }
}
