//! Tunable parameters of the framework.
//!
//! Defaults mirror the paper's experimental settings: `k = 3` assignments
//! per microtask (Section 6.1), `alpha = 1.0` (Appendix D.2), similarity
//! threshold `0.8` with topic-based similarity (Appendix D.1), `Q = 10`
//! qualification microtasks with a `0.6` rejection threshold over the first
//! five answers (Section 2.2).

use serde::{Deserialize, Serialize};

/// Parameters of the personalized-PageRank solver (Equation 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PprConfig {
    /// Convergence tolerance on the L1 change of `p` between iterations.
    pub tolerance: f64,
    /// Hard cap on power iterations.
    pub max_iterations: usize,
    /// Entries of precomputed `p_{t_i}` vectors below this value are
    /// dropped from the linearity index (sparsification; keeps the index
    /// small on large graphs without visibly changing estimates).
    pub index_epsilon: f64,
    /// Worker threads for offline construction (linearity-index build and
    /// the pairwise similarity sweep). `0` means "use available hardware
    /// parallelism"; `1` forces the serial path. Results are bit-identical
    /// for every value — this knob trades wall-clock time only.
    pub threads: usize,
}

impl Default for PprConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            max_iterations: 200,
            index_epsilon: 1e-6,
            threads: 0,
        }
    }
}

/// Parameters of the warm-up (qualification) component — Section 2.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmupConfig {
    /// Number of qualification microtasks selected (`Q`, Section 6.3.1).
    pub num_qualification: usize,
    /// A worker is rejected if her average qualification accuracy falls
    /// below this threshold...
    pub reject_threshold: f64,
    /// ...once she has completed at least this many qualification tasks
    /// (the paper's "less than 3 correct out of 5" example).
    pub reject_after: usize,
}

impl Default for WarmupConfig {
    fn default() -> Self {
        Self {
            num_qualification: 10,
            // The paper's worked example uses 0.6, but with domain-diverse
            // workers an *average* threshold that high rejects the very
            // experts iCrowd exists to exploit (a worker at 0.9 in one of
            // six domains averages ~0.47). We default to spammer level:
            // only workers bad everywhere are rejected.
            reject_threshold: 0.4,
            reject_after: 5,
        }
    }
}

/// Top-level framework configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ICrowdConfig {
    /// Assignment size `k`: workers per microtask (odd for clean majority).
    pub assignment_size: usize,
    /// Balance `alpha` in Equation (2) between graph smoothness and
    /// fidelity to observed accuracies.
    pub alpha: f64,
    /// Edges below this similarity are dropped when building the graph.
    pub similarity_threshold: f64,
    /// Optional cap on neighbors per task in the similarity graph
    /// (Figure 10's "maximal number of neighbors"); `None` = uncapped.
    pub max_neighbors: Option<usize>,
    /// Activity window in platform ticks (Section 4.1, Step 1).
    pub activity_window: u64,
    /// Assignment lease duration in ticks: an assignment not answered
    /// within this window is reclaimed — capacity returns to the worker
    /// and the task re-enters the candidate pool. `None` (the default)
    /// uses `activity_window`, matching the pre-lease abandon behaviour.
    pub lease_ticks: Option<u64>,
    /// Default accuracy assumed for a worker with no signal at all.
    pub default_accuracy: f64,
    /// Budget-saving extension (beyond the paper; related to
    /// CrowdScreen-style stopping rules): complete a microtask early once
    /// the naive-Bayes posterior of its leading answer, under the current
    /// accuracy estimates, reaches this confidence — even before `(k+1)/2`
    /// votes agree. `None` (the default and the paper's behaviour)
    /// disables it.
    pub early_stop_confidence: Option<f64>,
    /// Warm-up component settings.
    pub warmup: WarmupConfig,
    /// PPR solver settings.
    pub ppr: PprConfig,
}

impl Default for ICrowdConfig {
    fn default() -> Self {
        Self {
            assignment_size: 3,
            alpha: 1.0,
            similarity_threshold: 0.8,
            max_neighbors: None,
            activity_window: 30,
            lease_ticks: None,
            default_accuracy: 0.5,
            early_stop_confidence: None,
            warmup: WarmupConfig::default(),
            ppr: PprConfig::default(),
        }
    }
}

impl ICrowdConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    /// Returns [`crate::CoreError::InvalidConfig`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), crate::CoreError> {
        fn bad(msg: &str) -> Result<(), crate::CoreError> {
            Err(crate::CoreError::InvalidConfig {
                reason: msg.to_owned(),
            })
        }
        if self.assignment_size == 0 {
            return bad("assignment_size must be at least 1");
        }
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return bad("alpha must be positive and finite");
        }
        if !(0.0..=1.0).contains(&self.similarity_threshold) {
            return bad("similarity_threshold must lie in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.default_accuracy) {
            return bad("default_accuracy must lie in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.warmup.reject_threshold) {
            return bad("warmup.reject_threshold must lie in [0, 1]");
        }
        if self.ppr.tolerance <= 0.0 {
            return bad("ppr.tolerance must be positive");
        }
        if self.ppr.max_iterations == 0 {
            return bad("ppr.max_iterations must be at least 1");
        }
        if self.ppr.index_epsilon < 0.0 {
            return bad("ppr.index_epsilon must be non-negative");
        }
        if self.max_neighbors == Some(0) {
            return bad("max_neighbors, when set, must be at least 1");
        }
        if self.lease_ticks == Some(0) {
            return bad("lease_ticks, when set, must be at least 1");
        }
        if let Some(c) = self.early_stop_confidence {
            if !(c > 0.5 && c <= 1.0) {
                return bad("early_stop_confidence must lie in (0.5, 1]");
            }
        }
        Ok(())
    }

    /// The damping factor `1 / (1 + alpha)` used by the PPR iteration.
    #[inline]
    pub fn damping(&self) -> f64 {
        1.0 / (1.0 + self.alpha)
    }

    /// The restart weight `alpha / (1 + alpha)`.
    #[inline]
    pub fn restart(&self) -> f64 {
        self.alpha / (1.0 + self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = ICrowdConfig::default();
        assert_eq!(c.assignment_size, 3);
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.similarity_threshold, 0.8);
        assert_eq!(c.warmup.num_qualification, 10);
        // Spammer-level rejection default (see WarmupConfig::default docs
        // for why the paper's illustrative 0.6 is not the default here).
        assert_eq!(c.warmup.reject_threshold, 0.4);
        c.validate().expect("defaults must validate");
    }

    #[test]
    fn damping_and_restart_sum_to_one() {
        for alpha in [0.1, 0.5, 1.0, 2.0, 100.0] {
            let c = ICrowdConfig {
                alpha,
                ..Default::default()
            };
            assert!((c.damping() + c.restart() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_catches_bad_values() {
        let base = ICrowdConfig::default();
        let cases: Vec<ICrowdConfig> = vec![
            ICrowdConfig {
                assignment_size: 0,
                ..base.clone()
            },
            ICrowdConfig {
                alpha: 0.0,
                ..base.clone()
            },
            ICrowdConfig {
                alpha: f64::NAN,
                ..base.clone()
            },
            ICrowdConfig {
                similarity_threshold: 1.5,
                ..base.clone()
            },
            ICrowdConfig {
                default_accuracy: -0.1,
                ..base.clone()
            },
            ICrowdConfig {
                max_neighbors: Some(0),
                ..base.clone()
            },
            ICrowdConfig {
                lease_ticks: Some(0),
                ..base.clone()
            },
            ICrowdConfig {
                early_stop_confidence: Some(0.3),
                ..base.clone()
            },
            ICrowdConfig {
                early_stop_confidence: Some(1.5),
                ..base.clone()
            },
            ICrowdConfig {
                ppr: PprConfig {
                    tolerance: 0.0,
                    ..base.ppr
                },
                ..base.clone()
            },
            ICrowdConfig {
                ppr: PprConfig {
                    max_iterations: 0,
                    ..base.ppr
                },
                ..base.clone()
            },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "should reject {c:?}");
        }
    }
}
