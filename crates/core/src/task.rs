//! Microtasks, task identifiers and domains.
//!
//! A *microtask* (Section 2.1 of the paper) is the smallest unit of
//! crowdsourced work: a short question a worker answers with one of a small
//! number of choices. The paper presents binary YES/NO microtasks and notes
//! the techniques extend to more choices; [`Microtask::num_choices`]
//! carries that generality.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::answer::Answer;

/// Identifier of a microtask, dense and zero-based.
///
/// Dense ids let the graph and estimation layers index accuracy vectors by
/// plain `Vec` offset instead of hash lookups, which matters in the paper's
/// scalability experiment (Figure 10, millions of microtasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0 + 1)
    }
}

/// Identifier of a domain (topic) a microtask belongs to.
///
/// Domains are *evaluation-side* metadata: iCrowd itself never reads them
/// (it discovers topical structure through the similarity graph), but the
/// paper reports per-domain accuracies (Figures 6–9), so tasks carry their
/// domain for measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Domain(pub u16);

impl Domain {
    /// The domain as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Bidirectional mapping between domain names and [`Domain`] ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainRegistry {
    names: Vec<String>,
    by_name: HashMap<String, Domain>,
}

impl DomainRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly allocated).
    pub fn intern(&mut self, name: &str) -> Domain {
        if let Some(&d) = self.by_name.get(name) {
            return d;
        }
        let d = Domain(u16::try_from(self.names.len()).expect("more than u16::MAX domains"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), d);
        d
    }

    /// Looks up a domain by name without interning.
    pub fn get(&self, name: &str) -> Option<Domain> {
        self.by_name.get(name).copied()
    }

    /// The name of `domain`, if registered.
    pub fn name(&self, domain: Domain) -> Option<&str> {
        self.names.get(domain.index()).map(String::as_str)
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Domain, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Domain, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Domain(i as u16), n.as_str()))
    }
}

/// A crowdsourcing microtask.
///
/// The `text` field is whatever the worker sees (for entity resolution it is
/// the record pair, Table 1); similarity metrics tokenize it. `features`
/// optionally carries a numeric representation for Euclidean similarity
/// (Section 3.3 case 2, e.g. POI coordinates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microtask {
    /// Dense task id.
    pub id: TaskId,
    /// Human-readable question text shown to workers.
    pub text: String,
    /// Number of answer choices; `2` for the paper's YES/NO tasks.
    pub num_choices: u8,
    /// Evaluation-side domain label (not visible to the framework logic).
    pub domain: Option<Domain>,
    /// Requester-side ground truth, when known (qualification microtasks and
    /// simulation-side evaluation).
    pub ground_truth: Option<Answer>,
    /// Optional numeric feature vector for Euclidean similarity.
    pub features: Option<Vec<f64>>,
}

impl Microtask {
    /// Creates a binary YES/NO microtask with the given text.
    pub fn binary(id: TaskId, text: impl Into<String>) -> Self {
        Self {
            id,
            text: text.into(),
            num_choices: 2,
            domain: None,
            ground_truth: None,
            features: None,
        }
    }

    /// Sets the evaluation-side domain.
    pub fn with_domain(mut self, domain: Domain) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Sets the ground-truth answer.
    pub fn with_ground_truth(mut self, truth: Answer) -> Self {
        debug_assert!(truth.0 < self.num_choices, "ground truth out of range");
        self.ground_truth = Some(truth);
        self
    }

    /// Sets the numeric feature vector.
    pub fn with_features(mut self, features: Vec<f64>) -> Self {
        self.features = Some(features);
        self
    }

    /// Whether `answer` is a legal choice for this task.
    #[inline]
    pub fn is_valid_answer(&self, answer: Answer) -> bool {
        answer.0 < self.num_choices
    }
}

/// A set of microtasks with dense, contiguous ids `0..len`.
///
/// Most algorithms in the workspace operate on a `TaskSet` so they can use
/// `Vec`-indexed per-task state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Microtask>,
}

impl TaskSet {
    /// Creates an empty task set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a task set from tasks, validating ids are dense and in order.
    ///
    /// # Errors
    /// Returns [`crate::CoreError::NonDenseTaskIds`] if `tasks[i].id != i`.
    pub fn from_tasks(tasks: Vec<Microtask>) -> Result<Self, crate::CoreError> {
        for (i, t) in tasks.iter().enumerate() {
            if t.id.index() != i {
                return Err(crate::CoreError::NonDenseTaskIds {
                    position: i,
                    found: t.id,
                });
            }
        }
        Ok(Self { tasks })
    }

    /// Appends a new microtask built by `make`, which receives the assigned id.
    pub fn push_with(&mut self, make: impl FnOnce(TaskId) -> Microtask) -> TaskId {
        let id = TaskId(u32::try_from(self.tasks.len()).expect("more than u32::MAX tasks"));
        let task = make(id);
        debug_assert_eq!(task.id, id);
        self.tasks.push(task);
        id
    }

    /// The microtask with the given id.
    #[inline]
    pub fn get(&self, id: TaskId) -> Option<&Microtask> {
        self.tasks.get(id.index())
    }

    /// Number of microtasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the microtasks in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Microtask> {
        self.tasks.iter()
    }

    /// Iterates over all task ids.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Slice view of the underlying tasks.
    pub fn as_slice(&self) -> &[Microtask] {
        &self.tasks
    }
}

impl std::ops::Index<TaskId> for TaskSet {
    type Output = Microtask;

    fn index(&self, id: TaskId) -> &Microtask {
        &self.tasks[id.index()]
    }
}

impl FromIterator<Microtask> for TaskSet {
    /// Collects tasks, asserting dense ids (panics otherwise; use
    /// [`TaskSet::from_tasks`] for fallible construction).
    fn from_iter<I: IntoIterator<Item = Microtask>>(iter: I) -> Self {
        let tasks: Vec<_> = iter.into_iter().collect();
        Self::from_tasks(tasks).expect("tasks must have dense ids 0..n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_display_is_one_based_like_the_paper() {
        assert_eq!(TaskId(0).to_string(), "t1");
        assert_eq!(TaskId(11).to_string(), "t12");
    }

    #[test]
    fn domain_registry_interns_and_resolves() {
        let mut reg = DomainRegistry::new();
        let food = reg.intern("Food");
        let nba = reg.intern("NBA");
        assert_ne!(food, nba);
        assert_eq!(reg.intern("Food"), food);
        assert_eq!(reg.get("NBA"), Some(nba));
        assert_eq!(reg.name(food), Some("Food"));
        assert_eq!(reg.len(), 2);
        let names: Vec<_> = reg.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["Food", "NBA"]);
    }

    #[test]
    fn binary_task_builder_sets_fields() {
        let t = Microtask::binary(TaskId(3), "iphone 4 vs iphone four")
            .with_domain(Domain(1))
            .with_ground_truth(Answer::YES)
            .with_features(vec![1.0, 2.0]);
        assert_eq!(t.num_choices, 2);
        assert_eq!(t.domain, Some(Domain(1)));
        assert_eq!(t.ground_truth, Some(Answer::YES));
        assert!(t.is_valid_answer(Answer::NO));
        assert!(!t.is_valid_answer(Answer(2)));
    }

    #[test]
    fn task_set_push_with_assigns_dense_ids() {
        let mut set = TaskSet::new();
        let a = set.push_with(|id| Microtask::binary(id, "a"));
        let b = set.push_with(|id| Microtask::binary(id, "b"));
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(set.len(), 2);
        assert_eq!(set[b].text, "b");
        assert_eq!(set.ids().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn from_tasks_rejects_non_dense_ids() {
        let tasks = vec![Microtask::binary(TaskId(1), "x")];
        let err = TaskSet::from_tasks(tasks).unwrap_err();
        match err {
            crate::CoreError::NonDenseTaskIds { position, found } => {
                assert_eq!(position, 0);
                assert_eq!(found, TaskId(1));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
